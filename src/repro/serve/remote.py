"""Two-process C2PI serving over the socket transport.

:class:`RemoteServer` and :class:`RemoteClient` run the full C2PI flow —
offline bundle shipping, the online 2PC protocol, the noised reveal and
the server's clear-phase evaluation — between two actual processes
connected by a :class:`~repro.mpc.transport.PeerChannel`:

1. **Handshake.** The client announces optional link shaping and an
   optional *session* key; the server replies with the weight-free
   :func:`~repro.mpc.party.program_manifest` (op kinds and shapes only —
   weights never leave the server) — or an explicit ``busy`` reply when
   the session registry is at capacity.
2. **Offline phase (per request).** The server draws a bundle from the
   session's per-batch :class:`~repro.mpc.preprocessing.PreprocessingPool`
   (its dealer seed is derived from the session key, so every session's
   material stream is independent of how other sessions interleave),
   splits it, and ships the client's half as an opaque blob.
3. **Online phase.** Both sides execute their
   :class:`~repro.mpc.party.PartyEngine` halves over the socket.
4. **Reveal + clear phase.** The client perturbs its boundary share with
   its :class:`~repro.core.noise.NoiseMechanism` and reveals it; the
   server reconstructs the noised activation, runs the clear layers and
   returns the logits.

The server is **concurrent** around an event loop: one selector thread
owns the listener and every session's socket, so an idle-on-the-wire
session costs one file descriptor — not a parked thread — and sessions
are handed to a bounded worker pool only when a complete request frame
has actually arrived. Sessions beyond ``max_sessions`` get the busy
reply instead of a hung socket, a malformed client costs only its own
connection, and :meth:`RemoteServer.stop` drains in-flight sessions
before tearing the listener down. Per-session dealer-seed derivation
(:func:`derive_session_seed`) is what keeps every session's material
stream — and therefore its logits, bit for bit — identical to a serial
single-client run with the same session key, no matter how requests from
other clients interleave (DESIGN.md section 8). Anonymous sessions (no
``session`` key) share the base-seeded pools, preserving the historical
single-client byte-identity with the in-process pipeline.

The server is also **fault-tolerant** (DESIGN.md section 9): every
socket op is deadlined (``request_timeout``), every request carries an
idempotency key, and a session killed by the network resolves its
offline material on teardown — unshipped bundles return to their pool,
half-shipped ones are retained for the retry or poisoned. A client's
:meth:`RemoteClient.infer` with ``retries`` reconnects, rewinds its rng
snapshots and replays the request; the server replays the retained
bundle for that key, so the retried logits are byte-identical to the
fault-free run. The chaos layer (:mod:`repro.mpc.chaos`) injects
scripted network faults to prove all of this
(``tests/serve/test_chaos.py``, ``c2pi chaos-check``).

Measured socket traffic (``WireStats``) and protocol accounting
(:class:`~repro.mpc.network.Channel` counters) travel back with every
reply, so callers can verify the wire against the books and compare
measured latency with the :class:`~repro.mpc.network.NetworkModel`
prediction on the same run — which is what
:func:`benchmark_networked` (and ``c2pi serve-bench --networked``) does;
:func:`benchmark_concurrent` (``--clients N``) additionally measures
multi-session throughput scaling against a serialised run of the same
sessions and pins the per-session byte-identity under contention.

``python -m repro.serve.remote --arch resnet20`` starts a deterministic
demonstration server on an untrained victim (both processes can rebuild
the identical model from the seed), which is what the two-process tests
and the networked CI smoke job use.
"""

from __future__ import annotations

import hashlib
import queue
import random
import selectors
import socket
import threading
import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from .. import nn
from ..core.noise import NoiseMechanism
from ..models.layered import LayeredModel
from ..mpc.fixedpoint import DEFAULT_CONFIG, FixedPointConfig
from ..mpc.network import NetworkModel, TrafficSnapshot
from ..mpc.party import PartyEngine, program_fingerprint, program_manifest
from ..mpc.preprocessing import (
    PartyMaterialStream,
    PoolExhausted,
    PreprocessingPool,
    pack_party_bundle,
    split_bundle,
    unpack_party_bundle,
)
from ..mpc.program import SecureProgram, compile_program
from .dealer_service import (
    DealerBackedPool,
    DealerBusy,
    DealerClient,
    DealerUnreachable,
)
from ..mpc.shm import ShmChannel
from ..mpc.transport import (
    LinkShaper,
    LoopChannel,
    PeerChannel,
    Transport,
    TransportError,
    WireStats,
)

__all__ = [
    "PROTOCOL_VERSION",
    "ServerBusy",
    "PoolBusy",
    "SessionStats",
    "derive_session_seed",
    "RemoteReply",
    "RemoteServer",
    "RemoteClient",
    "benchmark_networked",
    "benchmark_concurrent",
    "main",
]

PROTOCOL_VERSION = 3  # v3: typed retriable busy replies on the bundle slot


class ServerBusy(TransportError):
    """The server's session registry is full; it replied ``busy``."""


class PoolBusy(ServerBusy):
    """The server admitted the request but its offline material is
    momentarily unavailable (pool exhausted, dealer busy/unreachable
    with fallback disabled). Retriable on the *same* connection: the
    session stays in lock-step and :meth:`RemoteClient.infer` with
    ``retries`` backs off and replays the request key."""


def derive_session_seed(base_seed: int, session: int | str | None) -> int:
    """The dealer seed of one session's preprocessing pools.

    ``None`` (an anonymous session) maps to ``base_seed`` itself — the
    historical single-client behaviour, byte-identical to the in-process
    :class:`~repro.core.c2pi.C2PIPipeline` under equal seeds. A named
    session hashes ``(base_seed, session)`` into an independent 64-bit
    seed, so each session owns a deterministic material stream that no
    interleaving with other sessions can perturb: the same session key
    against the same server seed always replays the same dealer draws,
    whether it runs alone or among ``N`` concurrent clients.
    """
    if session is None:
        return base_seed
    digest = hashlib.blake2b(
        f"c2pi-session:{base_seed}:{session!r}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "little")


def _snapshot_dict(snapshot: TrafficSnapshot) -> dict:
    return {
        "bytes_client_to_server": snapshot.bytes_client_to_server,
        "bytes_server_to_client": snapshot.bytes_server_to_client,
        "total_bytes": snapshot.total_bytes,
        "rounds": snapshot.rounds,
        "messages": snapshot.messages,
    }


# ----------------------------------------------------------------------
# server
# ----------------------------------------------------------------------
@dataclass
class SessionStats:
    """One session's serving record (kept in the registry snapshot)."""

    session_id: int
    session: int | str | None  # client-announced key (None = anonymous)
    requests: int = 0
    online_s: float = 0.0
    offline_s: float = 0.0
    handshake_ok: bool = False
    error: str | None = None
    active: bool = True
    wire: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "session_id": self.session_id,
            "session": self.session,
            "requests": self.requests,
            "online_s": self.online_s,
            "offline_s": self.offline_s,
            "handshake_ok": self.handshake_ok,
            "error": self.error,
            "active": self.active,
            "wire": dict(self.wire),
        }


@dataclass
class _Inflight:
    """One named session's most recent request and its dealer bundle.

    The joint bundle is retained until the request is *known delivered*
    (the next request key arrives, or the session says ``bye``): a retry
    of the same idempotency key replays the identical material — which,
    together with the client replaying its own rng draws, is what makes
    retried logits byte-identical to the fault-free run. Resolution:

    * superseded after completing → served normally (nothing to do);
    * failed before the client half shipped → ``pool.restore()`` (the
      intact bundle goes back; nothing left the server);
    * failed after shipping, then abandoned (superseded / ``bye`` /
      server stop without a retry) → ``pool.poison()`` (half-revealed
      material is never resold).
    """

    session: int | str
    request: int
    batch: int
    pool: PreprocessingPool
    bundle: list
    shipped: bool = False
    completed: bool = False


class _Session:
    """One accepted connection's event-loop record.

    The loop thread owns the file descriptor (``transport`` is a
    :class:`~repro.mpc.transport.LoopChannel`); a worker owns the
    session only between a dispatch and the matching return to
    ``idle``. ``state`` transitions — ``handshake`` → (``queued`` ⇄
    ``running`` ⇄ ``idle``) → ``dead``, or sideways to ``shm`` — happen
    under the server's ``_dispatch_lock``, which is what closes the
    deliver-while-going-idle race: the loop re-checks dispatchability
    under the same lock the worker used to park the session.
    """

    __slots__ = (
        "transport",
        "fd",
        "stats",
        "state",
        "deadline",
        "rejected",
        "hello_done",
        "shm_channel",
        "finished",
    )

    def __init__(self, transport: LoopChannel):
        self.transport = transport
        self.fd = -1
        self.stats: SessionStats | None = None
        self.state = "handshake"
        #: Loop-enforced receive deadline (monotonic seconds): the
        #: handshake budget at first, the idle ``request_timeout``
        #: between requests; ``None`` while a worker owns the session.
        self.deadline: float | None = None
        self.rejected = False
        self.hello_done = False
        self.shm_channel: Transport | None = None
        self.finished = False


class RemoteServer:
    """Serve private inferences to remote clients over TCP, concurrently.

    The server owns the model: it compiles the crypto segment once,
    plays the dealer for the offline phase, executes party 1 of the
    online protocol, and evaluates the clear layers on the noised
    boundary activation.

    Concurrency model (DESIGN.md sections 8 and 14):

    * one **event-loop thread** owns the listener and every session's
      socket: accepts and socket reads are non-blocking waits
      multiplexed on a selector, so an idle session costs one fd, not a
      parked thread — thousands of connected-but-quiet clients are fine;
    * ``workers`` pool threads execute the protocol; a session is
      dispatched to the pool only when a complete frame is waiting, and
      the worker is held per *request*, not per session. At most
      ``workers`` engine executions run at a time (``_worker_slots``
      also covers shared-memory sessions, which keep a dedicated pump
      thread because ring buffers are not selectable);
    * the registry admits at most ``max_sessions`` sessions (default:
      ``workers``); a connection beyond that receives an explicit
      ``busy`` hello (the client raises :class:`ServerBusy`) instead of
      a silently hung socket;
    * each session's preprocessing pools are seeded with
      :func:`derive_session_seed`, so its dealer stream — and logits —
      are byte-identical to a serial run of the same session key no
      matter how other sessions interleave. Anonymous sessions share the
      base-seeded pools (the single-client behaviour of old);
    * a malformed or vanished client is contained to its own session:
      the loop never sees per-connection exceptions, and failed
      handshakes are counted in ``connections_failed`` — never in
      ``connections_served``;
    * :meth:`stop` drains: in-flight sessions finish (bounded by
      ``timeout``) before their transports are force-closed.

    Only the loop thread ever touches the selector: workers and
    :meth:`stop` enqueue commands and wake the loop over a socketpair,
    so a descriptor is always unregistered before its socket closes.
    """

    def __init__(
        self,
        model: LayeredModel,
        boundary: float,
        config: FixedPointConfig = DEFAULT_CONFIG,
        seed: int = 0,
        host: str = "127.0.0.1",
        port: int = 0,
        program: SecureProgram | None = None,
        workers: int = 4,
        max_sessions: int | None = None,
        request_timeout: float = 120.0,
        allow_shm: bool = True,
        dealer: tuple[str, int] | None = None,
        dealer_timeout: float = 5.0,
        dealer_fetch_deadline: float | None = None,
        dealer_fallback: bool = True,
        dealer_transport_wrapper=None,
    ):
        if workers < 1:
            raise ValueError("workers must be positive")
        if request_timeout <= 0:
            raise ValueError("request_timeout must be positive")
        # Offline material source: None = generate in-process (the
        # historical mode); a (host, port) endpoint delegates generation
        # to the standalone crypto-producer (serve/dealer_service.py),
        # falling back to inline generation — byte-identically, the
        # fetched rng state keeps the local dealer in sync — when the
        # dealer is unreachable and `dealer_fallback` is set.
        self._dealer_endpoint = dealer
        self._dealer_timeout = dealer_timeout
        # The per-RPC timeout bounds one socket wait; the fetch deadline
        # bounds the whole retry loop around it, so it must leave room
        # for a few reconnect attempts (a dealer restart shorter than
        # the deadline is invisible to the serving request).
        self._dealer_fetch_deadline = (
            4.0 * dealer_timeout
            if dealer_fetch_deadline is None
            else dealer_fetch_deadline
        )
        self._dealer_fallback = dealer_fallback
        self._dealer_wrapper = dealer_transport_wrapper
        # Shared-memory placement is granted per session, and only to
        # unshaped links (a shaped "WAN" session must stay on the socket
        # path its emulation throttles).
        self.allow_shm = allow_shm
        self.model = model
        self.boundary = boundary
        self.config = config
        self.seed = seed
        self.host = host
        self.program = (
            program if program is not None else compile_program(model, boundary, config)
        )
        # One engine serves every session: the party-1 execution path is
        # stateless per run (the share rng belongs to party 0 only), so
        # concurrent workers may share it.
        self.engine = PartyEngine.from_program(self.program, party=1)
        self.workers = workers
        self.max_sessions = workers if max_sessions is None else max_sessions
        if self.max_sessions < 1:
            raise ValueError("max_sessions must be positive")
        self._pools: dict[tuple[int | str | None, int], PreprocessingPool] = {}
        self._pools_lock = threading.Lock()
        self._listener = PeerChannel.listen(host, port)
        self.port = self._listener.getsockname()[1]
        self._stopping = False
        # One state lock guards the registry and the finished-session
        # log; `_drained` lets stop() wait for in-flight sessions and
        # `_worker_slots` bounds concurrent protocol work.
        self._state_lock = threading.Lock()
        self._drained = threading.Condition(self._state_lock)
        # Counters get a dedicated leaf lock (never held while taking
        # any other): bare `+=` from concurrent workers is not atomic
        # under the GIL, so unlocked increments lose updates under load.
        self._metrics_lock = threading.Lock()
        self._worker_slots = threading.Semaphore(workers)
        # Event-loop plumbing. The loop thread is the only one that may
        # touch `_selector`, `_watched` or the listener once started;
        # everyone else appends to `_commands` and wakes the loop.
        self._dispatch_lock = threading.Lock()
        self._dispatch: queue.Queue = queue.Queue()
        self._commands: deque = deque()
        self._selector: selectors.BaseSelector | None = None
        self._watched: dict[int, _Session] = {}
        self._wake_r: socket.socket | None = None
        self._wake_w: socket.socket | None = None
        self._loop_thread: threading.Thread | None = None
        self._worker_threads: list[threading.Thread] = []
        self._start_lock = threading.Lock()
        self._started = False
        self._listener_open = True
        self._stopped = threading.Event()
        self._active: dict[int, tuple[SessionStats, Transport]] = {}
        # Accepted connections that have not completed the handshake yet.
        # Tracked so stop() can close them and so a flood of connections
        # that never speak (slow-loris) is bounded: beyond _max_pending
        # they are dropped outright, and each pending handshake gets only
        # `handshake_timeout` (not the full protocol timeout) to send its
        # link message. Channel carries identity equality/hash (eq=False),
        # so transports key the set directly.
        self._pending: set[Transport] = set()
        self._max_pending = max(32, 4 * self.max_sessions)
        self.handshake_timeout = 10.0
        # Read/write deadline applied to every accepted connection's
        # protocol ops: no socket wait outlives it, so a vanished or
        # stalled client can park a worker for at most this long before
        # the session is reaped and its pool material resolved.
        self.request_timeout = request_timeout
        # Per named session: the latest request's retained bundle (see
        # _Inflight). One entry per session key — the protocol is serial
        # within a session, so only its newest request can be retried.
        self._inflight: dict[int | str, _Inflight] = {}
        self._finished: list[SessionStats] = []
        self._next_session_id = 0
        self.connections_served = 0
        self.connections_failed = 0
        self.connections_rejected = 0
        self.requests_served = 0
        self.requests_retried = 0
        self.requests_busy = 0
        self.sessions_reaped = 0

    # ------------------------------------------------------------------
    def _count(self, name: str, n: int = 1) -> None:
        """Atomically bump one of the public counters.

        Every counter mutation goes through here: `+=` from concurrent
        workers is a read-modify-write that the GIL does not make
        atomic, and `metrics()` must never undercount served requests.
        """
        with self._metrics_lock:
            setattr(self, name, getattr(self, name) + n)

    def _note_served(
        self, stats: SessionStats, online_s: float, offline_s: float
    ) -> None:
        """Accumulate one request into its session's stats, atomically."""
        with self._metrics_lock:
            stats.requests += 1
            stats.online_s += online_s
            stats.offline_s += offline_s

    # ------------------------------------------------------------------
    def pool(
        self, batch: int, session: int | str | None = None
    ) -> PreprocessingPool:
        """The (session, batch) preprocessing pool, created on demand.

        Construction happens *outside* ``_pools_lock`` with a
        double-checked insert: a dealer-backed pool's client dials a
        remote endpoint lazily, but even its construction (fingerprint
        hashing, plan sizing) must not stall every other session's pool
        lookup behind one slow key. The losing side of a construction
        race closes its candidate.
        """
        key = (session, batch)
        with self._pools_lock:
            pool = self._pools.get(key)
        if pool is not None:
            return pool
        seed = derive_session_seed(self.seed, session)
        if self._dealer_endpoint is None:
            candidate: PreprocessingPool = PreprocessingPool(
                self.program, batch, dealer_seed=seed
            )
        else:
            host, port = self._dealer_endpoint
            # One client per pool: fetches are serialized by the
            # pool's generation lock, so the RPC connection never
            # needs to be shared across threads.
            candidate = DealerBackedPool(
                self.program,
                batch,
                dealer_seed=seed,
                client=DealerClient(
                    host,
                    port,
                    fingerprint=program_fingerprint(self.program),
                    timeout=self._dealer_timeout,
                    transport_wrapper=self._dealer_wrapper,
                ),
                fallback=self._dealer_fallback,
                fetch_deadline=self._dealer_fetch_deadline,
            )
        with self._pools_lock:
            pool = self._pools.setdefault(key, candidate)
        if pool is not candidate and isinstance(candidate, DealerBackedPool):
            candidate.close()
        return pool

    def warm(
        self, batch: int, bundles: int = 1, session: int | str | None = None
    ) -> None:
        """Pre-generate offline bundles for ``batch``-sized requests."""
        self.pool(batch, session=session).refill(bundles)

    # ------------------------------------------------------------------
    @property
    def active_sessions(self) -> int:
        with self._state_lock:
            return len(self._active)

    def wait_idle(self, timeout: float = 10.0) -> bool:
        """Block until no session is active (event-driven, no polling).

        A client's ``close()`` returns as soon as its ``bye`` is on the
        wire — the server may still be retiring the session. Callers that
        want quiesced metrics (tests, drain scripts) wait here on the
        same condition ``stop()`` drains on.
        """
        deadline = time.monotonic() + timeout
        with self._drained:
            while self._active:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._drained.wait(remaining):
                    return False
        return True

    def serve_forever(self, once: bool = False) -> None:
        """Serve until :meth:`stop` (or until one session, with ``once``).

        Starts the event loop and the worker pool on first call, then
        blocks. With ``once`` the call returns as soon as the first
        session has finished and no other is active (the loop keeps
        running; the typical ``--once`` caller exits the process next).
        """
        self._ensure_started()
        if once:
            with self._drained:
                while not self._stopping and not (
                    self._finished and not self._active
                ):
                    self._drained.wait(timeout=0.2)
            return
        self._stopped.wait()

    def _ensure_started(self) -> None:
        with self._start_lock:
            if self._started:
                return
            self._started = True
            self._listener.setblocking(False)
            self._selector = selectors.DefaultSelector()
            self._selector.register(self._listener, selectors.EVENT_READ,
                                    "listener")
            self._wake_r, self._wake_w = socket.socketpair()
            self._wake_r.setblocking(False)
            self._wake_w.setblocking(False)
            self._selector.register(self._wake_r, selectors.EVENT_READ, "wake")
            self._loop_thread = threading.Thread(
                target=self._loop_main, name="c2pi-loop", daemon=True
            )
            self._loop_thread.start()
            self._worker_threads = [
                threading.Thread(
                    target=self._worker_main,
                    name=f"c2pi-worker-{index}",
                    daemon=True,
                )
                for index in range(self.workers)
            ]
            for worker in self._worker_threads:
                worker.start()

    def _wake_loop(self) -> None:
        wake = self._wake_w
        if wake is None:
            return
        try:
            # audit: allow[wire/missing-label] -- loop wake socketpair, not protocol traffic
            wake.send(b"\x00")
        except (BlockingIOError, InterruptedError):
            pass  # a wake is already pending
        except OSError:
            pass  # loop already torn down

    def stop(self, drain: bool = True, timeout: float = 10.0) -> None:
        """Stop accepting; optionally wait for in-flight sessions.

        With ``drain`` (default) the call blocks until every admitted
        session has finished or ``timeout`` elapses; whatever is left is
        then force-closed so the caller never hangs on a wedged client.
        """
        self._stopping = True
        started = self._started and not self._stopped.is_set()
        if started:
            # The loop owns the listener: closing it out from under a
            # select() would corrupt the selector, so ask the loop.
            self._commands.append(("stop-accepting", None))
            self._wake_loop()
        else:
            self._close_listener()
        if drain:
            deadline = time.monotonic() + timeout
            with self._drained:
                while self._active:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._drained.wait(remaining):
                        break
        with self._state_lock:
            leftovers = [transport for _, transport in self._active.values()]
            leftovers.extend(self._pending)
            stranded = list(self._inflight.values())
            self._inflight.clear()
        if started:
            self._commands.append(("shutdown", None))
            self._wake_loop()
            self._stopped.wait(timeout=5.0)
        # The loop's exit closed every watched socket; anything left
        # (shared-memory channels, commands that raced the shutdown) is
        # closed here — close() is idempotent.
        self._run_commands(direct=True)
        for transport in leftovers:
            transport.close()
        for _ in self._worker_threads:
            self._dispatch.put(None)
        # No retry is coming once the server is down: resolve every
        # retained bundle so pool accounting balances at shutdown.
        for record in stranded:
            if not record.completed:
                record.pool.poison()
        with self._pools_lock:
            pools = list(self._pools.values())
        for pool in pools:
            if isinstance(pool, DealerBackedPool):
                pool.close()

    def _close_listener(self) -> None:
        if not self._listener_open:
            return
        self._listener_open = False
        try:
            # close() alone does not wake a blocked accept() on Linux;
            # shutdown() interrupts it deterministically.
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:  # pragma: no cover - platform dependent
            pass
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - platform dependent
            pass

    # -- the event loop (all selector access lives on this thread) ------
    def _loop_main(self) -> None:
        try:
            while True:
                if self._run_commands():
                    return  # shutdown: _loop_finish runs in finally
                events = self._selector.select(self._loop_timeout())
                for key, _ in events:
                    tag = key.data
                    if tag == "listener":
                        self._accept_ready()
                    elif tag == "wake":
                        self._drain_wake()
                    else:
                        self._service_readable(tag)
                self._expire_deadlines()
        finally:
            self._loop_finish()

    def _run_commands(self, direct: bool = False) -> bool:
        """Apply queued commands; ``True`` means shutdown was requested.

        ``direct`` is the post-loop path (stop() draining stragglers):
        the selector is gone, so only the close side effects apply.
        """
        while True:
            try:
                command, payload = self._commands.popleft()
            except IndexError:
                return False
            if command == "close":
                self._unwatch(payload)
                payload.transport.close()
            elif command == "stop-accepting" and not direct:
                self._unwatch_listener()
                self._close_listener()
            elif command == "shutdown" and not direct:
                return True

    def _drain_wake(self) -> None:
        try:
            while self._wake_r.recv(4096):
                pass
        except (BlockingIOError, InterruptedError):
            pass
        except OSError:  # pragma: no cover - teardown race
            pass

    def _loop_timeout(self) -> float | None:
        """Sleep until the nearest session deadline (or a wake)."""
        soonest: float | None = None
        for session in self._watched.values():
            deadline = session.deadline
            if deadline is not None and (soonest is None or deadline < soonest):
                soonest = deadline
        if soonest is None:
            return None
        return max(0.0, soonest - time.monotonic())

    def _unwatch_listener(self) -> None:
        if self._listener_open:
            try:
                self._selector.unregister(self._listener)
            except (KeyError, ValueError):  # pragma: no cover - idempotent
                pass

    def _accept_ready(self) -> None:
        while True:
            try:
                sock, _ = self._listener.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return  # listener closed by stop()
            with self._state_lock:
                overloaded = len(self._pending) >= self._max_pending
            if overloaded or self._stopping:
                # A connection flood that outpaces handshakes (or a
                # shutdown in progress): drop outright rather than
                # registering yet another silent socket.
                self._count("connections_rejected")
                try:
                    sock.close()
                except OSError:  # pragma: no cover - already dead
                    pass
                continue
            transport = LoopChannel(sock, party=1, timeout=self.request_timeout)
            with self._state_lock:
                self._pending.add(transport)
            session = _Session(transport)
            # The handshake gets a short deadline of its own: a client
            # that connects and never speaks is cut off in seconds, not
            # after the full (120 s) protocol timeout.
            session.deadline = time.monotonic() + self.handshake_timeout
            session.fd = transport.fileno()
            self._watched[session.fd] = session
            self._selector.register(transport, selectors.EVENT_READ, session)

    def _service_readable(self, session: _Session) -> None:
        delivered, closed = session.transport.on_readable()
        if closed:
            # EOF / terminal framing failure: nothing more will arrive,
            # stop watching (the close itself is the owner's business).
            self._unwatch(session)
            session.deadline = None
        if delivered:
            self._maybe_dispatch(session)

    def _unwatch(self, session: _Session) -> None:
        if self._watched.pop(session.fd, None) is None:
            return
        try:
            self._selector.unregister(session.transport)
        except (KeyError, ValueError):  # pragma: no cover - idempotent
            pass

    def _expire_deadlines(self) -> None:
        now = time.monotonic()
        for session in list(self._watched.values()):
            deadline = session.deadline
            if deadline is None or now < deadline:
                continue
            # Synthesize the timeout a blocking recv would have raised:
            # the dispatched worker runs the exact failure/reap path the
            # thread-per-session model exercised.
            session.deadline = None
            session.transport.inject(
                TransportError("party 1 timed out waiting for the peer")
            )
            self._maybe_dispatch(session)

    def _maybe_dispatch(self, session: _Session) -> None:
        with self._dispatch_lock:
            if session.state not in ("handshake", "idle"):
                return  # queued/running/shm/dead: someone owns it
            session.state = "queued"
            session.deadline = None
        self._dispatch.put(session)

    def _loop_finish(self) -> None:
        """Loop teardown: close every watched socket, then signal exit."""
        for session in list(self._watched.values()):
            self._unwatch(session)
            session.transport.close()
            # Wake a worker to run the failure/retire bookkeeping for
            # sessions nobody owns (idle, mid-handshake).
            self._maybe_dispatch(session)
        self._unwatch_listener()
        self._close_listener()
        for sock in (self._wake_r, self._wake_w):
            if sock is not None:
                try:
                    sock.close()
                except OSError:  # pragma: no cover - teardown race
                    pass
        self._selector.close()
        self._stopped.set()

    # -- the worker pool -------------------------------------------------
    def _worker_main(self) -> None:
        while True:
            session = self._dispatch.get()
            if session is None:
                return
            with self._dispatch_lock:
                run = session.state == "queued"
                if run:
                    session.state = "running"
            if run:
                self._process(session)

    def _process(self, session: _Session) -> None:
        """One dispatch: handshake, or serve queued requests, then park.

        Any per-connection failure — a vanished peer, a malformed
        request, a reshape error from a lying ``batch`` field — is
        recorded on the session and the connection closed; the loop and
        every other session keep running.
        """
        try:
            if not session.hello_done:
                if not self._session_handshake(session):
                    return  # rejected, failed over to shm, or parked
            self._session_requests(session)
        except (TransportError, OSError, ValueError, KeyError,
                TypeError, AttributeError) as exc:
            # Contain the blast radius: this connection dies, the server
            # lives. TransportError covers vanished/out-of-lockstep
            # peers; the rest is what a hostile or buggy peer can induce
            # (malformed request dict, bad batch, reshape failure, ...)
            # — worth surfacing in the metrics, not in a dead worker.
            self._finish_session(session, exc)
        except Exception as exc:
            # An internal bug (assertion, name error, ...) must not be
            # absorbed as if a client had misbehaved: do the same
            # bookkeeping, then let it propagate to the thread excepthook.
            self._finish_session(session, exc)
            raise

    def _session_handshake(self, session: _Session) -> bool:
        """Run the hello exchange; ``True`` if requests should follow now.

        ``False`` covers the three other outcomes: the connection was
        rejected with a busy hello, upgraded to shared memory (a pump
        thread takes over), or parked idle on the loop until its first
        request frame arrives.
        """
        transport = session.transport
        protocol_timeout = transport.timeout
        transport.timeout = self.handshake_timeout
        link = transport.recv_obj("link")
        transport.timeout = protocol_timeout
        if link.get("bandwidth_bytes_per_s"):
            transport.shaper = LinkShaper(
                link["bandwidth_bytes_per_s"], link.get("rtt_s") or 0.0
            )
        session_key = link.get("session")
        stats, rejection = self._admit(session_key, transport)
        if stats is None:
            session.rejected = True
            self._count("connections_rejected")
            with self._state_lock:
                active = len(self._active)
            transport.send_obj(
                {
                    "protocol": PROTOCOL_VERSION,
                    "busy": True,
                    "reason": rejection,
                    "active_sessions": active,
                    "max_sessions": self.max_sessions,
                },
                "hello",
            )
            self._finish_session(session, None)
            return False
        session.stats = stats
        hello = {
            "protocol": PROTOCOL_VERSION,
            "model": self.model.name,
            "boundary": self.boundary,
            "session": stats.session_id,
            "manifest": program_manifest(self.program),
        }
        shm_channel = None
        if link.get("shm") and self.allow_shm and transport.shaper is None:
            try:
                shm_channel, grant = ShmChannel.serve(transport)
            except (OSError, ValueError, MemoryError):
                # Can't create the segments (exhausted /dev/shm,
                # no shared-memory support, ...): stay on TCP.
                shm_channel = None
            else:
                hello["shm"] = grant
        transport.send_obj(hello, "hello")
        stats.handshake_ok = True
        session.hello_done = True
        if shm_channel is not None:
            # Everything after the hello rides the rings, which are not
            # selectable: a dedicated pump thread serves this session
            # (still one protocol slot per request). The TCP connection
            # stays watched underneath as the liveness carrier.
            session.shm_channel = shm_channel
            with self._state_lock:
                self._active[stats.session_id] = (stats, shm_channel)
            with self._dispatch_lock:
                session.state = "shm"
            threading.Thread(
                target=self._shm_session_worker,
                args=(session,),
                name="c2pi-shm-session",
                daemon=True,
            ).start()
            return False
        return not self._park_idle(session)

    def _session_requests(self, session: _Session) -> None:
        """Serve request frames until the inbox drains, then park.

        The dispatch contract guarantees a complete frame is waiting on
        entry, so the only blocking receives a pool worker ever performs
        are *inside* one request's protocol execution — where the client
        is actively streaming its rounds.
        """
        transport = session.transport
        stats = session.stats
        while True:
            request = transport.recv_obj("req")
            command = request.get("cmd")
            if command == "bye":
                self._resolve_inflight(stats.session, final=True)
                self._finish_session(session, None)
                return
            if command != "infer":
                raise TransportError(f"unknown request: {request!r}")
            with self._worker_slots:
                served = self._serve_inference(transport, request, stats)
            self._count("requests_served" if served else "requests_busy")
            if self._park_idle(session):
                return

    def _park_idle(self, session: _Session) -> bool:
        """Between requests: hand the session back to the loop if its
        inbox is empty. The loop's ``_maybe_dispatch`` takes the same
        lock after delivering frames, so a frame that races this park
        either lands before the emptiness check (we keep serving) or
        re-dispatches the now-idle session — never lost either way."""
        with self._dispatch_lock:
            if session.transport._inbox.qsize() > 0:
                return False  # the next frame is already here
            session.state = "idle"
            session.deadline = time.monotonic() + self.request_timeout
        self._wake_loop()  # recompute the loop's sleep for the deadline
        return True

    def _shm_session_worker(self, session: _Session) -> None:
        """Dedicated pump for one shared-memory session's ring buffers."""
        shm = session.shm_channel
        stats = session.stats
        try:
            while True:
                request = shm.recv_obj("req")
                command = request.get("cmd")
                if command == "bye":
                    self._resolve_inflight(stats.session, final=True)
                    self._finish_session(session, None)
                    return
                if command != "infer":
                    raise TransportError(f"unknown request: {request!r}")
                with self._worker_slots:
                    served = self._serve_inference(shm, request, stats)
                self._count("requests_served" if served else "requests_busy")
        except (TransportError, OSError, ValueError, KeyError,
                TypeError, AttributeError) as exc:
            self._finish_session(session, exc)
        except Exception as exc:
            self._finish_session(session, exc)
            raise

    def _finish_session(
        self, session: _Session, exc: BaseException | None
    ) -> None:
        """Terminal bookkeeping for one session (idempotent).

        Mirrors the old per-session thread's ``except``/``finally``:
        failure notes and reaping, transport closure (routed through
        the loop so the descriptor is unregistered first), pending-set
        cleanup and retirement into the finished log.
        """
        with self._dispatch_lock:
            if session.finished:
                return
            session.finished = True
            session.state = "dead"
        if exc is not None:
            self._note_worker_failure(session.stats, session.rejected, exc)
        shm = session.shm_channel
        if shm is not None:
            shm.close()
        if self._stopped.is_set():
            session.transport.close()
        else:
            self._commands.append(("close", session))
            self._wake_loop()
        with self._state_lock:
            self._pending.discard(session.transport)
        if session.stats is not None:
            self._retire(
                session.stats, shm if shm is not None else session.transport
            )

    # ------------------------------------------------------------------
    def _admit(self, session_key: int | str | None, transport: Transport):
        """Register a session; returns ``(stats, rejection_reason)``.

        Rejects at capacity — and rejects a *named* key that is already
        active: two live connections drawing from one seeded pool would
        interleave its material stream and silently void the per-session
        determinism guarantee. (Anonymous sessions opt out of that
        guarantee and may share freely.)
        """
        with self._state_lock:
            if len(self._active) >= self.max_sessions:
                return None, "capacity"
            if session_key is not None and any(
                stats.session == session_key for stats, _ in self._active.values()
            ):
                return None, "session-key-in-use"
            stats = SessionStats(
                session_id=self._next_session_id, session=session_key
            )
            self._next_session_id += 1
            self._active[stats.session_id] = (stats, transport)
            # Promoted out of the handshake set: stop() must drain this
            # session, not force-close it as a stalled handshake.
            self._pending.discard(transport)
        return stats, None

    def _retire(self, stats: SessionStats, transport: Transport) -> None:
        stats.active = False
        stats.wire = transport.stats.as_dict()
        self._count(
            "connections_served"
            if stats.handshake_ok and stats.error is None
            else "connections_failed"
        )
        with self._drained:
            self._active.pop(stats.session_id, None)
            self._finished.append(stats)
            self._drained.notify_all()

    def _note_worker_failure(
        self, stats: "SessionStats | None", rejected: bool, exc: BaseException
    ) -> None:
        """Session failure bookkeeping (shared by both handlers)."""
        if stats is not None:
            stats.error = f"{type(exc).__name__}: {exc}"
            self._reap(stats)
        elif not rejected:  # a rejection already counted itself
            self._count("connections_failed")

    def _reap(self, stats: SessionStats) -> None:
        """A session died mid-protocol: resolve its offline material.

        A bundle acquired but never (even partially) shipped goes back to
        the front of its pool, intact. A shipped-but-uncompleted bundle
        stays cached for the session's retry — the reconnecting client
        replays the request under the same idempotency key and receives
        the identical material (it is poisoned only if the retry never
        comes). Anonymous sessions have no retry identity; their failed
        bundles were already resolved inside ``_serve_inference``.
        """
        self._count("sessions_reaped")
        with self._state_lock:
            record = self._inflight.get(stats.session)
            restore = (
                record is not None and not record.shipped and not record.completed
            )
            if restore:
                self._inflight.pop(stats.session, None)
        if restore:
            record.pool.restore(record.bundle)

    def _resolve_inflight(self, session: int | str | None, final: bool = False,
                          keep: int | None = None) -> None:
        """Drop a session's retained bundle once no retry can want it.

        ``keep`` preserves the record with that request key (the one a
        new request is about to retry); ``final`` (``bye`` or shutdown)
        drops unconditionally. An uncompleted record resolved here was
        half-shipped to a client that moved on: poison it.
        """
        if session is None:
            return
        with self._state_lock:
            record = self._inflight.get(session)
            if record is None or (keep is not None and record.request == keep):
                return
            if not final and keep is None:
                return
            self._inflight.pop(session, None)
        if not record.completed:
            record.pool.poison()

    def _acquire_for_request(
        self, request: dict, batch: int, stats: SessionStats
    ) -> tuple[list, _Inflight | None]:
        """The request's dealer bundle — replayed on a retry, fresh otherwise.

        A *named* session sending an idempotency key gets its bundle
        retained (see :class:`_Inflight`): a retried key replays the
        identical material, a new key supersedes (and resolves) the old
        record. Anonymous or keyless requests draw fresh material with no
        retry identity.
        """
        key = request.get("request")
        if stats.session is None or key is None:
            return self.pool(batch, session=stats.session).acquire_bundle(), None
        key = int(key)
        with self._state_lock:
            record = self._inflight.get(stats.session)
            retried = record is not None and record.request == key
            if retried and record.batch != batch:
                raise TransportError(
                    f"retried request {key} changed batch "
                    f"{record.batch} -> {batch}; a retry must replay the "
                    "original request verbatim"
                )
        if retried:
            self._count("requests_retried")
            return record.bundle, record
        # A new key makes the previous record unreachable: resolve it.
        self._resolve_inflight(stats.session, keep=key, final=True)
        pool = self.pool(batch, session=stats.session)
        bundle = pool.acquire_bundle()
        record = _Inflight(
            session=stats.session, request=key, batch=batch, pool=pool,
            bundle=bundle,
        )
        with self._state_lock:
            self._inflight[stats.session] = record
        return bundle, record

    def _serve_inference(
        self, transport: Transport, request: dict, stats: SessionStats
    ) -> bool:
        batch = int(request["batch"])
        # Offline: draw a bundle, keep our half, ship the client's half.
        offline_start = time.perf_counter()
        pool = self.pool(batch, session=stats.session)
        try:
            bundle, record = self._acquire_for_request(request, batch, stats)
        except (PoolExhausted, DealerBusy, DealerUnreachable) as exc:
            # Offline material is momentarily unavailable. Nothing has
            # been written to the wire for this request yet, so the
            # session stays in lock-step: fill the bundle slot with a
            # typed retriable refusal instead of killing the connection.
            transport.send_obj(
                {
                    "busy": True,
                    "retriable": True,
                    "reason": type(exc).__name__,
                    "detail": str(exc),
                },
                "bundle",
            )
            return False
        shipped = False
        try:
            # Serialize before flagging: np.savez materialises the whole
            # multi-MB blob — the one fallible step before any byte can
            # leave the server, and the window in which a failed bundle
            # is still restorable. Once send_blob is attempted, a partial
            # write is indistinguishable from none: shipped means "maybe".
            blob = pack_party_bundle(split_bundle(bundle, 0))
            shipped = True
            if record is not None:
                record.shipped = True
            transport.send_blob(blob, "bundle")
            material = PartyMaterialStream(split_bundle(bundle, 1))
            offline_s = time.perf_counter() - offline_start
            self._run_request(
                transport, batch, stats, pool, material, offline_s
            )
            if record is not None:
                record.completed = True
            return True
        except Exception:
            if record is None:
                # No retry identity: resolve the bundle here and now.
                if shipped:
                    pool.poison()
                else:
                    pool.restore(bundle)
            raise

    def _run_request(
        self,
        transport: Transport,
        batch: int,
        stats: SessionStats,
        pool: PreprocessingPool,
        material: PartyMaterialStream,
        offline_s: float,
    ) -> None:
        # Online: our half of the protocol, then reveal + clear phase.
        before = transport.snapshot()
        online_start = time.perf_counter()
        execution = self.engine.run(transport, material, batch=batch)

        payload = transport.pull("noised-reveal")
        transport.send(0, len(payload), label="noised-reveal")
        transport.tick_round("noised-reveal")
        client_share = np.frombuffer(payload, dtype=np.uint64).reshape(
            batch, *self.program.output_shape
        )
        boundary_ring = (client_share + execution.share).astype(np.uint64)
        server_view = self.config.decode(boundary_ring)
        with nn.no_grad():
            logits = self.model.forward_from(
                nn.Tensor(server_view), self.boundary
            ).data
        online_s = time.perf_counter() - online_start
        self._note_served(stats, online_s, offline_s)

        transport.send_tensor(np.asarray(logits, dtype=np.float32), "logits")
        transport.send_obj(
            {
                "online_s": online_s,
                "offline_s": offline_s,
                "session": stats.session_id,
                "pool": pool.stats.as_dict(),
                "traffic": _snapshot_dict(transport.diff(before)),
            },
            "metrics",
        )

    # ------------------------------------------------------------------
    def metrics(self) -> dict:
        """One thread-safe snapshot: global counters, per-session stats,
        aggregated :class:`~repro.mpc.transport.WireStats` and per-pool
        offline counters."""
        with self._metrics_lock:
            counters = {
                "connections_served": self.connections_served,
                "connections_failed": self.connections_failed,
                "connections_rejected": self.connections_rejected,
                "requests_served": self.requests_served,
                "requests_retried": self.requests_retried,
                "requests_busy": self.requests_busy,
                "sessions_reaped": self.sessions_reaped,
                "workers": self.workers,
                "max_sessions": self.max_sessions,
            }
        with self._state_lock:
            active = [
                (stats.as_dict(), transport.stats.as_dict())
                for stats, transport in self._active.values()
            ]
            finished = [stats.as_dict() for stats in self._finished]
            counters["inflight_bundles"] = len(self._inflight)
            counters["active_sessions"] = len(self._active)
        sessions = []
        wire_total = WireStats()
        for stats_dict, live_wire in active:
            stats_dict["wire"] = live_wire
            sessions.append(stats_dict)
            wire_total.accumulate(WireStats(**live_wire))
        for stats_dict in finished:
            sessions.append(stats_dict)
            if stats_dict["wire"]:
                wire_total.accumulate(WireStats(**stats_dict["wire"]))
        sessions.sort(key=lambda entry: entry["session_id"])
        with self._pools_lock:
            pools = {
                f"session={session!r}/batch={batch}": pool.stats.as_dict()
                for (session, batch), pool in self._pools.items()
            }
        result = {
            **counters,
            "bundles_poisoned": sum(p["bundles_poisoned"] for p in pools.values()),
            "bundles_returned": sum(p["bundles_returned"] for p in pools.values()),
            "sessions": sessions,
            "wire": wire_total.as_dict(),
            "pools": pools,
        }
        if self._dealer_endpoint is not None:
            host, port = self._dealer_endpoint
            result["dealer"] = {
                "endpoint": f"{host}:{port}",
                "fallback": self._dealer_fallback,
                "bundles_fetched_remote": sum(
                    p["bundles_fetched_remote"] for p in pools.values()
                ),
                "dealer_fallbacks": sum(
                    p["dealer_fallbacks"] for p in pools.values()
                ),
                "dealer_rpc_retries": sum(
                    p["dealer_rpc_retries"] for p in pools.values()
                ),
            }
        return result


# ----------------------------------------------------------------------
# client
# ----------------------------------------------------------------------
@dataclass
class RemoteReply:
    """One served remote inference, with measured wire-level evidence."""

    logits: np.ndarray
    online_s: float  # client-side wall clock: request sent -> logits back
    traffic: TrafficSnapshot  # protocol accounting for this request
    measured_payload_bytes: int  # raw socket payload actually moved
    offline_bytes: int  # bundle blob size (control traffic)
    server: dict  # the server's metrics message

    @property
    def prediction(self) -> np.ndarray:
        return self.logits.argmax(axis=1)

    @property
    def bytes_match(self) -> bool:
        """Measured socket payload equals the protocol's accounting."""
        return self.measured_payload_bytes == self.traffic.total_bytes


class RemoteClient:
    """The client party: owns the input and the noise, never the weights.

    ``session`` names this client's session on the server: the server
    derives the session's dealer seed from it, so re-running the same
    ``(session, seed)`` pair reproduces the logits byte for byte even if
    the original run shared the server with other clients. ``None``
    keeps the legacy anonymous behaviour (base-seeded shared pools).
    Raises :class:`ServerBusy` when the server is at ``max_sessions``.

    Fault tolerance: every request carries an idempotency key, and
    :meth:`infer` accepts ``retries`` — on a transport failure the client
    reconnects (backing off through transient :class:`ServerBusy` while
    the server reaps the dead session), rewinds its share/noise rngs to
    the request's snapshot, and replays the request under the same key.
    The server replays the same dealer bundle for that key, so a retried
    request on a *named* session returns logits byte-identical to the
    fault-free run. ``connect_retries`` applies the same recovery to the
    initial handshake; ``transport_wrapper`` (applied to every fresh
    connection) is the chaos-testing hook
    (:meth:`repro.mpc.chaos.ChaosController.wrap`).
    """

    def __init__(
        self,
        host: str,
        port: int,
        noise_magnitude: float = 0.1,
        seed: int = 0,
        network: NetworkModel | None = None,
        timeout: float | None = 120.0,
        session: int | str | None = None,
        transport_wrapper=None,
        connect_retries: int = 0,
        reconnect_timeout: float = 10.0,
        busy_backoff_s: float = 0.05,
        wait_for_slot: bool = False,
        shm: bool = False,
    ):
        self.session = session
        self.host = host
        self.port = port
        self._network = network
        self._timeout = timeout
        self._wrapper = transport_wrapper
        # Shared-memory placement only makes sense for a co-located,
        # unshaped, unwrapped link: an emulated network or a chaos
        # wrapper must see every frame on the socket path it intercepts.
        self._shm = shm and network is None and transport_wrapper is None
        self.shm_active = False
        self._seed = seed
        self.reconnect_timeout = reconnect_timeout
        self.busy_backoff_s = busy_backoff_s
        # Decorrelated-jitter source for the backoff loops: seeded per
        # client instance (monotonic ns XOR identity) so a fleet of
        # loadgen clients spawned in the same tick still spreads its
        # retries instead of hammering the server in lockstep.
        self._jitter = random.Random(time.monotonic_ns() ^ id(self))
        self.noise = NoiseMechanism(noise_magnitude, seed=seed)
        self.engine: PartyEngine | None = None
        self.transport: Transport | None = None
        self.requests_retried = 0
        self._next_request = 0
        if wait_for_slot:
            # Patient mode: back off through busy replies (and transient
            # faults) for up to reconnect_timeout instead of surfacing
            # the first ServerBusy.
            self._reconnect()
            return
        for attempt in range(connect_retries + 1):
            try:
                self._handshake()
                break
            except ServerBusy:
                raise  # an explicit busy reply is not a fault; surface it
            except TransportError:
                if attempt == connect_retries:
                    raise

    def _handshake(self) -> None:
        """(Re)connect and run the hello exchange; keeps the engine."""
        transport = PeerChannel.connect(
            self.host,
            self.port,
            shaper=LinkShaper.for_network(self._network) if self._network else None,
            timeout=self._timeout,
        )
        if self._wrapper is not None:
            transport = self._wrapper(transport)
        try:
            transport.send_obj(
                {
                    "bandwidth_bytes_per_s": self._network.bandwidth_bytes_per_s
                    if self._network
                    else None,
                    "rtt_s": self._network.rtt_s if self._network else None,
                    "session": self.session,
                    "shm": self._shm,
                },
                "link",
            )
            hello = transport.recv_obj("hello")
        except TransportError:
            transport.close()
            raise
        if hello.get("protocol") != PROTOCOL_VERSION:
            transport.close()
            raise TransportError(
                f"protocol mismatch: server speaks {hello.get('protocol')}, "
                f"client speaks {PROTOCOL_VERSION}"
            )
        if hello.get("busy"):
            transport.close()
            if hello.get("reason") == "session-key-in-use":
                raise ServerBusy(
                    f"session key {self.session!r} is already active on the "
                    "server; concurrent connections must use distinct keys"
                )
            raise ServerBusy(
                "server is at capacity "
                f"({hello.get('active_sessions')}/{hello.get('max_sessions')} "
                "sessions); retry later"
            )
        self.server_model = hello["model"]
        self.boundary = hello["boundary"]
        self.server_session_id = hello.get("session")
        self.manifest = hello["manifest"]
        grant = hello.get("shm")
        self.shm_active = False
        if self._shm and grant:
            # The server has already rebound to the rings; attaching must
            # succeed or the placements disagree — surface, don't limp.
            try:
                transport = ShmChannel.connect(grant, carrier=transport)
            except (TransportError, OSError, ValueError) as exc:
                transport.close()
                raise TransportError(
                    f"server granted shared-memory placement but attaching "
                    f"failed: {exc}"
                ) from exc
            self.shm_active = True
        if self.engine is None:
            # The engine (and its share rng) persists across reconnects:
            # a retried request must replay the original rng draws, not
            # restart the stream.
            self.engine = PartyEngine.from_manifest(
                self.manifest, share_seed=self._seed + 1
            )
            self.config = self.engine.config
        self.transport = transport

    def _reconnect(self) -> None:
        """Re-handshake after a fault, riding out the server-side reap.

        Until the server reaps the dead session its key reads as active,
        so the reconnect backs off through ``session-key-in-use`` (and
        transient connect failures) for up to ``reconnect_timeout``
        seconds — bounded by the server's own ``request_timeout``, which
        is what frees the key.
        """
        deadline = time.monotonic() + self.reconnect_timeout
        backoff = self.busy_backoff_s
        while True:
            try:
                self._handshake()
                return
            except (ServerBusy, TransportError):
                now = time.monotonic()
                if now >= deadline:
                    raise
                # Sleep only what the deadline has left: a full backoff
                # step here could overshoot reconnect_timeout by up to
                # the 0.5 s cap. The next step is decorrelated jitter
                # (uniform over [base, 3*previous], capped) so a fleet
                # of clients spreads its retries.
                delay = min(backoff, deadline - now)
                if delay > 0:
                    time.sleep(delay)
                backoff = min(
                    0.5, self._jitter.uniform(self.busy_backoff_s, backoff * 3.0)
                )

    @property
    def input_shape(self) -> tuple[int, ...]:
        return self.engine.input_shape

    # ------------------------------------------------------------------
    def infer(self, images: np.ndarray, retries: int = 0) -> RemoteReply:
        """Run one private inference on a float NCHW batch.

        ``retries``: how many times to recover from a transport fault by
        reconnecting and replaying this request under its idempotency
        key. On a named session the replayed request is byte-identical —
        same input shares, same noise draw, same dealer material — so
        the logits match the fault-free run exactly.
        """
        images = np.asarray(images, dtype=np.float32)
        if images.ndim == 3:
            images = images[None]
        key = self._next_request
        share_state = self.engine.share_rng_state()
        noise_state = self.noise.rng.bit_generator.state
        last: Exception | None = None
        backoff = self.busy_backoff_s
        reconnect = False
        for attempt in range(retries + 1):
            if attempt:
                self.requests_retried += 1
                if reconnect:
                    self.engine.restore_share_rng(share_state)
                    self.noise.rng.bit_generator.state = noise_state
                    self._reconnect()
            try:
                reply = self._infer_once(images, key)
            except PoolBusy as exc:
                # The server deferred us on a live connection: no rng was
                # consumed and no reconnect is needed — back off and
                # replay the same request key in lock-step.
                last = exc
                reconnect = False
                if attempt < retries:
                    time.sleep(backoff)
                    backoff = min(
                        0.5,
                        self._jitter.uniform(self.busy_backoff_s, backoff * 3.0),
                    )
                continue
            except ServerBusy:
                raise
            except TransportError as exc:
                last = exc
                reconnect = True
                if self.transport is not None:
                    self.transport.close()
                    self.transport = None
                continue
            self._next_request = key + 1
            return reply
        # The key is burnt even on terminal failure: a *different* later
        # request must never replay it, or the server would resell this
        # request's retained (half-shipped) bundle for new inputs.
        self._next_request = key + 1
        if isinstance(last, PoolBusy):
            # Surface the typed retriable refusal: the connection is
            # still alive and in lock-step, the caller may simply call
            # again once material is expected to exist.
            raise last
        raise TransportError(
            f"request {key} failed after {retries + 1} attempt(s): {last}"
        ) from last

    def _infer_once(self, images: np.ndarray, key: int) -> RemoteReply:
        if self.transport is None:
            self._reconnect()
        transport = self.transport
        transport.send_obj(
            {"cmd": "infer", "batch": int(images.shape[0]), "request": key}, "req"
        )
        kind, payload = transport.recv_reply("bundle")
        if kind == "obj":
            # The bundle slot carried a typed refusal: the server is up
            # and the session is still in lock-step, its offline material
            # just isn't ready. Retriable on this same connection.
            raise PoolBusy(
                f"server deferred request {key}: {payload.get('reason')} "
                f"({payload.get('detail')})"
            )
        blob = payload
        material = PartyMaterialStream(unpack_party_bundle(blob))

        before = transport.snapshot()
        raw_before = transport.stats.raw_payload_total
        start = time.perf_counter()
        execution = self.engine.run(transport, material, x=images)

        perturbed = self.noise.perturb_share(execution.share, self.config)
        transport.push(transport.stage(perturbed, "noised-reveal"), "noised-reveal")
        transport.send(0, perturbed.nbytes, label="noised-reveal")
        transport.tick_round("noised-reveal")

        logits = transport.recv_tensor("logits")
        server_metrics = transport.recv_obj("metrics")
        online_s = time.perf_counter() - start
        return RemoteReply(
            logits=logits,
            online_s=online_s,
            traffic=transport.diff(before),
            measured_payload_bytes=transport.stats.raw_payload_total - raw_before,
            offline_bytes=len(blob),
            server=server_metrics,
        )

    def close(self) -> None:
        if self.transport is None:
            return
        try:
            self.transport.send_obj({"cmd": "bye"}, "req")
        except TransportError:  # pragma: no cover - server already gone
            pass
        self.transport.close()
        self.transport = None


# ----------------------------------------------------------------------
# measured vs modeled benchmark
# ----------------------------------------------------------------------
def benchmark_networked(
    model: LayeredModel,
    boundary: float,
    images: np.ndarray,
    max_batch: int = 4,
    noise_magnitude: float = 0.1,
    seed: int = 0,
    networks: tuple[NetworkModel, ...] = (),
) -> dict:
    """Measure real transported serving and compare with the cost model.

    Runs a :class:`RemoteServer` on a loopback socket (in a background
    thread — use the CLI pair for full process isolation), serves the
    images in ``max_batch`` coalesced requests, and reports:

    * the unshaped loopback run: measured online seconds, socket payload
      vs protocol accounting (``bytes_match``);
    * for each shaped network: the measured wall-clock under token-bucket
      bandwidth + injected RTT, side by side with the
      :meth:`NetworkModel.latency` prediction fed the *same run's*
      directional traffic, rounds and loopback compute time.
    """
    images = np.asarray(images, dtype=np.float32)
    if images.ndim == 3:
        images = images[None]
    groups = [
        images[start : start + max_batch]
        for start in range(0, images.shape[0], max_batch)
    ]

    server = RemoteServer(model, boundary, seed=seed)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    report: dict = {"listen": f"{server.host}:{server.port}"}
    try:
        # --- unshaped loopback: ground truth for compute + accounting.
        client = RemoteClient(
            "127.0.0.1", server.port, noise_magnitude=noise_magnitude, seed=seed
        )
        loopback_replies = [client.infer(group) for group in groups]
        client.close()
        loopback = {
            "online_s": sum(r.online_s for r in loopback_replies),
            "offline_bundle_bytes": sum(r.offline_bytes for r in loopback_replies),
            "bytes": sum(r.traffic.total_bytes for r in loopback_replies),
            "measured_payload_bytes": sum(
                r.measured_payload_bytes for r in loopback_replies
            ),
            "rounds": sum(r.traffic.rounds for r in loopback_replies),
            "bytes_match": all(r.bytes_match for r in loopback_replies),
            "predictions": [int(p) for r in loopback_replies for p in r.prediction],
        }
        report["loopback"] = loopback

        # --- shaped runs: measured wall clock vs modeled latency.
        for network in networks:
            client = RemoteClient(
                "127.0.0.1",
                server.port,
                noise_magnitude=noise_magnitude,
                seed=seed,
                network=network,
            )
            measured = 0.0
            modeled = 0.0
            for group, loopback_reply in zip(groups, loopback_replies):
                reply = client.infer(group)
                measured += reply.online_s
                modeled += network.latency_of(
                    reply.traffic, compute_s=loopback_reply.online_s
                )
            client.close()
            report[network.name] = {
                "measured_s": measured,
                "modeled_s": modeled,
                "measured_over_modeled": measured / modeled if modeled else None,
            }
    finally:
        server.stop()
        thread.join(timeout=10.0)
    return report


# ----------------------------------------------------------------------
# concurrent multi-session benchmark
# ----------------------------------------------------------------------
def benchmark_concurrent(
    model: LayeredModel,
    boundary: float,
    images: np.ndarray,
    clients: int = 4,
    max_batch: int = 4,
    noise_magnitude: float = 0.1,
    seed: int = 0,
    workers: int | None = None,
    network: NetworkModel | None = None,
) -> dict:
    """Measure multi-session throughput scaling — with determinism pinned.

    Every client ``c`` runs the identical workload (``images`` coalesced
    into ``max_batch`` requests) as session ``c`` with client seed
    ``seed + c``, twice against identically-seeded servers:

    1. **serial** — sessions run one after another, one connection at a
       time: the single-client baseline, repeated ``clients`` times;
    2. **concurrent** — all sessions at once against one server with
       ``workers`` session workers.

    Both passes warm every session's preprocessing pools *before* the
    timed window (the warm seconds are reported separately as
    ``offline_warm_s``), so the measurement is online serving
    throughput — the amortised quantity C2PI's offline/online split
    optimises for. Warming draws the identical dealer stream the
    miss-path would have drawn, so it changes no bytes.

    ``network`` shapes every connection (token-bucket bandwidth +
    injected RTT, each session on its own emulated link). This is where
    concurrency pays even on one core: a serial accept loop leaves the
    server idle for every round-trip of the one client it is stuck on,
    while concurrent sessions overlap their network waits (and, on
    multi-core hosts, their numpy compute).

    The report carries wall-clock and requests/s for both passes, the
    speedup, and two correctness pins: every reply's measured socket
    payload equals its protocol accounting (``bytes_match``), and every
    session's logits under contention are **byte-identical** to its
    serial run (``logits_match_serial``) — the per-session dealer-seed
    derivation at work. This is ``c2pi serve-bench --networked
    --clients N``.
    """
    if clients < 1:
        raise ValueError("clients must be positive")
    images = np.asarray(images, dtype=np.float32)
    if images.ndim == 3:
        images = images[None]
    groups = [
        images[start : start + max_batch]
        for start in range(0, images.shape[0], max_batch)
    ]
    workers = clients if workers is None else workers
    program = compile_program(model, boundary, DEFAULT_CONFIG)

    def run_session(port: int, session: int) -> list[RemoteReply]:
        client = RemoteClient(
            "127.0.0.1",
            port,
            noise_magnitude=noise_magnitude,
            seed=seed + session,
            session=session,
            network=network,
        )
        replies = [client.infer(group) for group in groups]
        client.close()
        return replies

    # Per-session pool demand: warmed before the timed window in both
    # passes, so the measurement is *online* serving throughput (the
    # offline phase is the amortised cost the paper's split pays ahead
    # of time). Warming upfront draws the identical dealer stream the
    # miss-path would have drawn, so logits are unchanged.
    group_sizes: dict[int, int] = {}
    for group in groups:
        size = int(group.shape[0])
        group_sizes[size] = group_sizes.get(size, 0) + 1

    def run_pass(concurrent: bool):
        server = RemoteServer(
            model,
            boundary,
            seed=seed,
            program=program,
            workers=workers,
            max_sessions=max(clients, workers),
        )
        accept_thread = threading.Thread(target=server.serve_forever, daemon=True)
        accept_thread.start()
        replies: dict[int, list[RemoteReply]] = {}
        try:
            offline_start = time.perf_counter()
            for session in range(clients):
                for size, count in group_sizes.items():
                    server.warm(size, bundles=count, session=session)
            offline_s = time.perf_counter() - offline_start
            start = time.perf_counter()
            if concurrent:
                def worker(session: int) -> None:
                    replies[session] = run_session(server.port, session)

                threads = [
                    threading.Thread(target=worker, args=(session,))
                    for session in range(clients)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
            else:
                for session in range(clients):
                    replies[session] = run_session(server.port, session)
            wall_s = time.perf_counter() - start
        finally:
            server.stop()
            accept_thread.join(timeout=10.0)
        return wall_s, offline_s, replies, server.metrics()

    serial_s, serial_offline_s, serial_replies, _ = run_pass(concurrent=False)
    concurrent_s, concurrent_offline_s, concurrent_replies, server_metrics = run_pass(
        concurrent=True
    )

    # "Requests" are protocol requests (infer round-trips, matching the
    # server's `requests_served`); each coalesces up to max_batch images.
    requests_per_client = len(groups)
    images_per_client = int(images.shape[0])
    total_requests = clients * requests_per_client
    total_images = clients * images_per_client
    logits_match = all(
        a.logits.tobytes() == b.logits.tobytes()
        for session in range(clients)
        for a, b in zip(serial_replies[session], concurrent_replies[session])
    )
    bytes_match = all(
        reply.bytes_match
        for replies in concurrent_replies.values()
        for reply in replies
    )
    per_session = [
        {
            "session": session,
            "requests": requests_per_client,
            "images": images_per_client,
            "online_s": sum(r.online_s for r in concurrent_replies[session]),
            "predictions": [
                int(p) for r in concurrent_replies[session] for p in r.prediction
            ],
        }
        for session in range(clients)
    ]

    def pace(wall_s: float) -> dict:
        return {
            "wall_s": wall_s,
            "throughput_rps": total_requests / wall_s if wall_s else 0.0,
            "inferences_per_s": total_images / wall_s if wall_s else 0.0,
        }

    return {
        "clients": clients,
        "workers": workers,
        "max_batch": max_batch,
        "network": network.name if network else "loopback",
        "requests_per_client": requests_per_client,
        "images_per_client": images_per_client,
        "total_requests": total_requests,
        "total_images": total_images,
        "serial": {**pace(serial_s), "offline_warm_s": serial_offline_s},
        "concurrent": {**pace(concurrent_s), "offline_warm_s": concurrent_offline_s},
        "speedup": serial_s / concurrent_s if concurrent_s else float("inf"),
        "bytes_match": bytes_match,
        "logits_match_serial": logits_match,
        "per_session": per_session,
        "server": server_metrics,
    }


# ----------------------------------------------------------------------
# deterministic demonstration server (two-process tests, CI smoke)
# ----------------------------------------------------------------------
def _demo_victim(arch: str, width: float, rng_seed: int) -> LayeredModel:
    from ..models import alexnet, resnet20, vgg16, vgg19

    makers = {
        "alexnet": alexnet,
        "vgg16": vgg16,
        "vgg19": vgg19,
        "resnet20": resnet20,
    }
    rng = np.random.default_rng(rng_seed)
    return makers[arch](width_mult=width, rng=rng).eval()


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.serve.remote``: a deterministic loopback server.

    The victim is *untrained* but fully determined by
    ``(arch, width, model-seed)``, so a test or example process can
    rebuild the identical model and check logits byte for byte.
    """
    import argparse

    parser = argparse.ArgumentParser(description="C2PI demonstration server")
    parser.add_argument("--arch", default="resnet20",
                        choices=("alexnet", "vgg16", "vgg19", "resnet20"))
    parser.add_argument("--width", type=float, default=0.25)
    parser.add_argument("--model-seed", type=int, default=0)
    parser.add_argument("--boundary", type=float, default=3.5)
    parser.add_argument("--seed", type=int, default=0, help="dealer seed")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--once", action="store_true",
                        help="serve a single connection, then exit")
    parser.add_argument("--workers", type=int, default=4,
                        help="concurrent session workers")
    parser.add_argument("--max-sessions", type=int, default=None,
                        help="admission bound (default: --workers)")
    args = parser.parse_args(argv)

    model = _demo_victim(args.arch, args.width, args.model_seed)
    server = RemoteServer(
        model, args.boundary, seed=args.seed, host=args.host, port=args.port,
        workers=args.workers, max_sessions=args.max_sessions,
    )
    print(f"listening on {server.host}:{server.port}", flush=True)
    server.serve_forever(once=args.once)
    return 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
