"""Two-process C2PI serving over the socket transport.

:class:`RemoteServer` and :class:`RemoteClient` run the full C2PI flow —
offline bundle shipping, the online 2PC protocol, the noised reveal and
the server's clear-phase evaluation — between two actual processes
connected by a :class:`~repro.mpc.transport.PeerChannel`:

1. **Handshake.** The client announces optional link shaping; the server
   replies with the weight-free :func:`~repro.mpc.party.program_manifest`
   (op kinds and shapes only — weights never leave the server).
2. **Offline phase (per request).** The server draws a bundle from its
   per-batch :class:`~repro.mpc.preprocessing.PreprocessingPool` (seeded
   like the in-process pipeline, so runs are byte-identical to it),
   splits it, and ships the client's half as an opaque blob.
3. **Online phase.** Both sides execute their
   :class:`~repro.mpc.party.PartyEngine` halves over the socket.
4. **Reveal + clear phase.** The client perturbs its boundary share with
   its :class:`~repro.core.noise.NoiseMechanism` and reveals it; the
   server reconstructs the noised activation, runs the clear layers and
   returns the logits.

Measured socket traffic (``WireStats``) and protocol accounting
(:class:`~repro.mpc.network.Channel` counters) travel back with every
reply, so callers can verify the wire against the books and compare
measured latency with the :class:`~repro.mpc.network.NetworkModel`
prediction on the same run — which is what
:func:`benchmark_networked` (and ``c2pi serve-bench --networked``) does.

``python -m repro.serve.remote --arch resnet20`` starts a deterministic
demonstration server on an untrained victim (both processes can rebuild
the identical model from the seed), which is what the two-process tests
and the networked CI smoke job use.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from .. import nn
from ..core.noise import NoiseMechanism
from ..models.layered import LayeredModel
from ..mpc.fixedpoint import DEFAULT_CONFIG, FixedPointConfig
from ..mpc.network import NetworkModel, TrafficSnapshot
from ..mpc.party import PartyEngine, program_manifest
from ..mpc.preprocessing import (
    PartyMaterialStream,
    PreprocessingPool,
    pack_party_bundle,
    split_bundle,
    unpack_party_bundle,
)
from ..mpc.program import SecureProgram, compile_program
from ..mpc.transport import LinkShaper, PeerChannel, Transport, TransportError

__all__ = [
    "PROTOCOL_VERSION",
    "RemoteReply",
    "RemoteServer",
    "RemoteClient",
    "benchmark_networked",
]

PROTOCOL_VERSION = 1


def _snapshot_dict(snapshot: TrafficSnapshot) -> dict:
    return {
        "bytes_client_to_server": snapshot.bytes_client_to_server,
        "bytes_server_to_client": snapshot.bytes_server_to_client,
        "total_bytes": snapshot.total_bytes,
        "rounds": snapshot.rounds,
        "messages": snapshot.messages,
    }


# ----------------------------------------------------------------------
# server
# ----------------------------------------------------------------------
class RemoteServer:
    """Serve private inferences to remote clients over TCP.

    The server owns the model: it compiles the crypto segment once,
    plays the dealer for the offline phase (bundles are generated from
    ``dealer_seed = seed`` per batch size, mirroring
    :class:`~repro.core.c2pi.C2PIPipeline`), executes party 1 of the
    online protocol, and evaluates the clear layers on the noised
    boundary activation.
    """

    def __init__(
        self,
        model: LayeredModel,
        boundary: float,
        config: FixedPointConfig = DEFAULT_CONFIG,
        seed: int = 0,
        host: str = "127.0.0.1",
        port: int = 0,
        program: SecureProgram | None = None,
    ):
        self.model = model
        self.boundary = boundary
        self.config = config
        self.seed = seed
        self.host = host
        self.program = (
            program if program is not None else compile_program(model, boundary, config)
        )
        self.engine = PartyEngine.from_program(self.program, party=1)
        self._pools: dict[int, PreprocessingPool] = {}
        self._listener = PeerChannel.listen(host, port)
        self.port = self._listener.getsockname()[1]
        self._stopping = False
        self.connections_served = 0
        self.requests_served = 0

    # ------------------------------------------------------------------
    def pool(self, batch: int) -> PreprocessingPool:
        pool = self._pools.get(batch)
        if pool is None:
            pool = PreprocessingPool(self.program, batch, dealer_seed=self.seed)
            self._pools[batch] = pool
        return pool

    def warm(self, batch: int, bundles: int = 1) -> None:
        """Pre-generate offline bundles for ``batch``-sized requests."""
        self.pool(batch).refill(bundles)

    # ------------------------------------------------------------------
    def serve_forever(self, once: bool = False) -> None:
        """Accept and serve connections until :meth:`stop` (or one, with
        ``once``)."""
        while not self._stopping:
            try:
                transport = PeerChannel.accept(self._listener)
            except OSError:
                break  # listener closed by stop()
            try:
                self._serve_connection(transport)
            except TransportError:
                pass  # client vanished mid-protocol; serve the next one
            finally:
                transport.close()
            self.connections_served += 1
            if once:
                break

    def stop(self) -> None:
        self._stopping = True
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - platform dependent
            pass

    # ------------------------------------------------------------------
    def _serve_connection(self, transport: Transport) -> None:
        link = transport.recv_obj("link")
        if link.get("bandwidth_bytes_per_s"):
            transport.shaper = LinkShaper(
                link["bandwidth_bytes_per_s"], link.get("rtt_s") or 0.0
            )
        transport.send_obj(
            {
                "protocol": PROTOCOL_VERSION,
                "model": self.model.name,
                "boundary": self.boundary,
                "manifest": program_manifest(self.program),
            },
            "hello",
        )
        while True:
            request = transport.recv_obj("req")
            command = request.get("cmd")
            if command == "bye":
                break
            if command != "infer":
                raise TransportError(f"unknown request: {request!r}")
            self._serve_inference(transport, int(request["batch"]))
            self.requests_served += 1

    def _serve_inference(self, transport: Transport, batch: int) -> None:
        # Offline: draw a bundle, keep our half, ship the client's half.
        offline_start = time.perf_counter()
        pool = self.pool(batch)
        bundle = pool.acquire_bundle()
        transport.send_blob(pack_party_bundle(split_bundle(bundle, 0)), "bundle")
        material = PartyMaterialStream(split_bundle(bundle, 1))
        offline_s = time.perf_counter() - offline_start

        # Online: our half of the protocol, then reveal + clear phase.
        before = transport.snapshot()
        online_start = time.perf_counter()
        execution = self.engine.run(transport, material, batch=batch)

        payload = transport.pull("noised-reveal")
        transport.send(0, len(payload), label="noised-reveal")
        transport.tick_round("noised-reveal")
        client_share = np.frombuffer(payload, dtype=np.uint64).reshape(
            batch, *self.program.output_shape
        )
        boundary_ring = (client_share + execution.share).astype(np.uint64)
        server_view = self.config.decode(boundary_ring)
        with nn.no_grad():
            logits = self.model.forward_from(
                nn.Tensor(server_view), self.boundary
            ).data
        online_s = time.perf_counter() - online_start

        transport.send_tensor(np.asarray(logits, dtype=np.float32), "logits")
        transport.send_obj(
            {
                "online_s": online_s,
                "offline_s": offline_s,
                "pool": pool.stats.as_dict(),
                "traffic": _snapshot_dict(transport.diff(before)),
            },
            "metrics",
        )


# ----------------------------------------------------------------------
# client
# ----------------------------------------------------------------------
@dataclass
class RemoteReply:
    """One served remote inference, with measured wire-level evidence."""

    logits: np.ndarray
    online_s: float  # client-side wall clock: request sent -> logits back
    traffic: TrafficSnapshot  # protocol accounting for this request
    measured_payload_bytes: int  # raw socket payload actually moved
    offline_bytes: int  # bundle blob size (control traffic)
    server: dict  # the server's metrics message

    @property
    def prediction(self) -> np.ndarray:
        return self.logits.argmax(axis=1)

    @property
    def bytes_match(self) -> bool:
        """Measured socket payload equals the protocol's accounting."""
        return self.measured_payload_bytes == self.traffic.total_bytes


class RemoteClient:
    """The client party: owns the input and the noise, never the weights."""

    def __init__(
        self,
        host: str,
        port: int,
        noise_magnitude: float = 0.1,
        seed: int = 0,
        network: NetworkModel | None = None,
        timeout: float | None = 120.0,
    ):
        self.transport = PeerChannel.connect(
            host,
            port,
            shaper=LinkShaper.for_network(network) if network else None,
            timeout=timeout,
        )
        self.transport.send_obj(
            {
                "bandwidth_bytes_per_s": network.bandwidth_bytes_per_s
                if network
                else None,
                "rtt_s": network.rtt_s if network else None,
            },
            "link",
        )
        hello = self.transport.recv_obj("hello")
        if hello.get("protocol") != PROTOCOL_VERSION:
            raise TransportError(
                f"protocol mismatch: server speaks {hello.get('protocol')}, "
                f"client speaks {PROTOCOL_VERSION}"
            )
        self.server_model = hello["model"]
        self.boundary = hello["boundary"]
        self.manifest = hello["manifest"]
        self.engine = PartyEngine.from_manifest(self.manifest, share_seed=seed + 1)
        self.config = self.engine.config
        self.noise = NoiseMechanism(noise_magnitude, seed=seed)

    @property
    def input_shape(self) -> tuple[int, ...]:
        return self.engine.input_shape

    # ------------------------------------------------------------------
    def infer(self, images: np.ndarray) -> RemoteReply:
        """Run one private inference on a float NCHW batch."""
        images = np.asarray(images, dtype=np.float32)
        if images.ndim == 3:
            images = images[None]
        transport = self.transport
        transport.send_obj({"cmd": "infer", "batch": int(images.shape[0])}, "req")
        blob = transport.recv_blob("bundle")
        material = PartyMaterialStream(unpack_party_bundle(blob))

        before = transport.snapshot()
        raw_before = transport.stats.raw_payload_total
        start = time.perf_counter()
        execution = self.engine.run(transport, material, x=images)

        perturbed = self.noise.perturb_share(execution.share, self.config)
        transport.push(np.ascontiguousarray(perturbed).tobytes(), "noised-reveal")
        transport.send(0, perturbed.nbytes, label="noised-reveal")
        transport.tick_round("noised-reveal")

        logits = transport.recv_tensor("logits")
        server_metrics = transport.recv_obj("metrics")
        online_s = time.perf_counter() - start
        return RemoteReply(
            logits=logits,
            online_s=online_s,
            traffic=transport.diff(before),
            measured_payload_bytes=transport.stats.raw_payload_total - raw_before,
            offline_bytes=len(blob),
            server=server_metrics,
        )

    def close(self) -> None:
        try:
            self.transport.send_obj({"cmd": "bye"}, "req")
        except TransportError:  # pragma: no cover - server already gone
            pass
        self.transport.close()


# ----------------------------------------------------------------------
# measured vs modeled benchmark
# ----------------------------------------------------------------------
def benchmark_networked(
    model: LayeredModel,
    boundary: float,
    images: np.ndarray,
    max_batch: int = 4,
    noise_magnitude: float = 0.1,
    seed: int = 0,
    networks: tuple[NetworkModel, ...] = (),
) -> dict:
    """Measure real transported serving and compare with the cost model.

    Runs a :class:`RemoteServer` on a loopback socket (in a background
    thread — use the CLI pair for full process isolation), serves the
    images in ``max_batch`` coalesced requests, and reports:

    * the unshaped loopback run: measured online seconds, socket payload
      vs protocol accounting (``bytes_match``);
    * for each shaped network: the measured wall-clock under token-bucket
      bandwidth + injected RTT, side by side with the
      :meth:`NetworkModel.latency` prediction fed the *same run's*
      directional traffic, rounds and loopback compute time.
    """
    import threading

    images = np.asarray(images, dtype=np.float32)
    if images.ndim == 3:
        images = images[None]
    groups = [
        images[start : start + max_batch]
        for start in range(0, images.shape[0], max_batch)
    ]

    server = RemoteServer(model, boundary, seed=seed)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    report: dict = {"listen": f"{server.host}:{server.port}"}
    try:
        # --- unshaped loopback: ground truth for compute + accounting.
        client = RemoteClient(
            "127.0.0.1", server.port, noise_magnitude=noise_magnitude, seed=seed
        )
        loopback_replies = [client.infer(group) for group in groups]
        client.close()
        loopback = {
            "online_s": sum(r.online_s for r in loopback_replies),
            "offline_bundle_bytes": sum(r.offline_bytes for r in loopback_replies),
            "bytes": sum(r.traffic.total_bytes for r in loopback_replies),
            "measured_payload_bytes": sum(
                r.measured_payload_bytes for r in loopback_replies
            ),
            "rounds": sum(r.traffic.rounds for r in loopback_replies),
            "bytes_match": all(r.bytes_match for r in loopback_replies),
            "predictions": [int(p) for r in loopback_replies for p in r.prediction],
        }
        report["loopback"] = loopback

        # --- shaped runs: measured wall clock vs modeled latency.
        for network in networks:
            client = RemoteClient(
                "127.0.0.1",
                server.port,
                noise_magnitude=noise_magnitude,
                seed=seed,
                network=network,
            )
            measured = 0.0
            modeled = 0.0
            for group, loopback_reply in zip(groups, loopback_replies):
                reply = client.infer(group)
                measured += reply.online_s
                modeled += network.latency_of(
                    reply.traffic, compute_s=loopback_reply.online_s
                )
            client.close()
            report[network.name] = {
                "measured_s": measured,
                "modeled_s": modeled,
                "measured_over_modeled": measured / modeled if modeled else None,
            }
    finally:
        server.stop()
        thread.join(timeout=10.0)
    return report


# ----------------------------------------------------------------------
# deterministic demonstration server (two-process tests, CI smoke)
# ----------------------------------------------------------------------
def _demo_victim(arch: str, width: float, rng_seed: int) -> LayeredModel:
    from ..models import alexnet, resnet20, vgg16, vgg19

    makers = {
        "alexnet": alexnet,
        "vgg16": vgg16,
        "vgg19": vgg19,
        "resnet20": resnet20,
    }
    rng = np.random.default_rng(rng_seed)
    return makers[arch](width_mult=width, rng=rng).eval()


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.serve.remote``: a deterministic loopback server.

    The victim is *untrained* but fully determined by
    ``(arch, width, model-seed)``, so a test or example process can
    rebuild the identical model and check logits byte for byte.
    """
    import argparse

    parser = argparse.ArgumentParser(description="C2PI demonstration server")
    parser.add_argument("--arch", default="resnet20",
                        choices=("alexnet", "vgg16", "vgg19", "resnet20"))
    parser.add_argument("--width", type=float, default=0.25)
    parser.add_argument("--model-seed", type=int, default=0)
    parser.add_argument("--boundary", type=float, default=3.5)
    parser.add_argument("--seed", type=int, default=0, help="dealer seed")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--once", action="store_true",
                        help="serve a single connection, then exit")
    args = parser.parse_args(argv)

    model = _demo_victim(args.arch, args.width, args.model_seed)
    server = RemoteServer(
        model, args.boundary, seed=args.seed, host=args.host, port=args.port
    )
    print(f"listening on {server.host}:{server.port}", flush=True)
    server.serve_forever(once=args.once)
    return 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
