"""Two-process C2PI serving over the socket transport.

:class:`RemoteServer` and :class:`RemoteClient` run the full C2PI flow —
offline bundle shipping, the online 2PC protocol, the noised reveal and
the server's clear-phase evaluation — between two actual processes
connected by a :class:`~repro.mpc.transport.PeerChannel`:

1. **Handshake.** The client announces optional link shaping and an
   optional *session* key; the server replies with the weight-free
   :func:`~repro.mpc.party.program_manifest` (op kinds and shapes only —
   weights never leave the server) — or an explicit ``busy`` reply when
   the session registry is at capacity.
2. **Offline phase (per request).** The server draws a bundle from the
   session's per-batch :class:`~repro.mpc.preprocessing.PreprocessingPool`
   (its dealer seed is derived from the session key, so every session's
   material stream is independent of how other sessions interleave),
   splits it, and ships the client's half as an opaque blob.
3. **Online phase.** Both sides execute their
   :class:`~repro.mpc.party.PartyEngine` halves over the socket.
4. **Reveal + clear phase.** The client perturbs its boundary share with
   its :class:`~repro.core.noise.NoiseMechanism` and reveals it; the
   server reconstructs the noised activation, runs the clear layers and
   returns the logits.

The server is **concurrent**: a bounded worker pool serves one session
per connection, sessions beyond ``max_sessions`` get the busy reply
instead of a hung socket, a malformed client costs only its own
connection, and :meth:`RemoteServer.stop` drains in-flight sessions
before tearing the listener down. Per-session dealer-seed derivation
(:func:`derive_session_seed`) is what keeps every session's material
stream — and therefore its logits, bit for bit — identical to a serial
single-client run with the same session key, no matter how requests from
other clients interleave (DESIGN.md section 8). Anonymous sessions (no
``session`` key) share the base-seeded pools, preserving the historical
single-client byte-identity with the in-process pipeline.

Measured socket traffic (``WireStats``) and protocol accounting
(:class:`~repro.mpc.network.Channel` counters) travel back with every
reply, so callers can verify the wire against the books and compare
measured latency with the :class:`~repro.mpc.network.NetworkModel`
prediction on the same run — which is what
:func:`benchmark_networked` (and ``c2pi serve-bench --networked``) does;
:func:`benchmark_concurrent` (``--clients N``) additionally measures
multi-session throughput scaling against a serialised run of the same
sessions and pins the per-session byte-identity under contention.

``python -m repro.serve.remote --arch resnet20`` starts a deterministic
demonstration server on an untrained victim (both processes can rebuild
the identical model from the seed), which is what the two-process tests
and the networked CI smoke job use.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from .. import nn
from ..core.noise import NoiseMechanism
from ..models.layered import LayeredModel
from ..mpc.fixedpoint import DEFAULT_CONFIG, FixedPointConfig
from ..mpc.network import NetworkModel, TrafficSnapshot
from ..mpc.party import PartyEngine, program_manifest
from ..mpc.preprocessing import (
    PartyMaterialStream,
    PreprocessingPool,
    pack_party_bundle,
    split_bundle,
    unpack_party_bundle,
)
from ..mpc.program import SecureProgram, compile_program
from ..mpc.transport import (
    LinkShaper,
    PeerChannel,
    Transport,
    TransportError,
    WireStats,
)

__all__ = [
    "PROTOCOL_VERSION",
    "ServerBusy",
    "SessionStats",
    "derive_session_seed",
    "RemoteReply",
    "RemoteServer",
    "RemoteClient",
    "benchmark_networked",
    "benchmark_concurrent",
    "main",
]

PROTOCOL_VERSION = 1


class ServerBusy(TransportError):
    """The server's session registry is full; it replied ``busy``."""


def derive_session_seed(base_seed: int, session: int | str | None) -> int:
    """The dealer seed of one session's preprocessing pools.

    ``None`` (an anonymous session) maps to ``base_seed`` itself — the
    historical single-client behaviour, byte-identical to the in-process
    :class:`~repro.core.c2pi.C2PIPipeline` under equal seeds. A named
    session hashes ``(base_seed, session)`` into an independent 64-bit
    seed, so each session owns a deterministic material stream that no
    interleaving with other sessions can perturb: the same session key
    against the same server seed always replays the same dealer draws,
    whether it runs alone or among ``N`` concurrent clients.
    """
    if session is None:
        return base_seed
    digest = hashlib.blake2b(
        f"c2pi-session:{base_seed}:{session!r}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "little")


def _snapshot_dict(snapshot: TrafficSnapshot) -> dict:
    return {
        "bytes_client_to_server": snapshot.bytes_client_to_server,
        "bytes_server_to_client": snapshot.bytes_server_to_client,
        "total_bytes": snapshot.total_bytes,
        "rounds": snapshot.rounds,
        "messages": snapshot.messages,
    }


# ----------------------------------------------------------------------
# server
# ----------------------------------------------------------------------
@dataclass
class SessionStats:
    """One session's serving record (kept in the registry snapshot)."""

    session_id: int
    session: int | str | None  # client-announced key (None = anonymous)
    requests: int = 0
    online_s: float = 0.0
    offline_s: float = 0.0
    handshake_ok: bool = False
    error: str | None = None
    active: bool = True
    wire: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "session_id": self.session_id,
            "session": self.session,
            "requests": self.requests,
            "online_s": self.online_s,
            "offline_s": self.offline_s,
            "handshake_ok": self.handshake_ok,
            "error": self.error,
            "active": self.active,
            "wire": dict(self.wire),
        }


class RemoteServer:
    """Serve private inferences to remote clients over TCP, concurrently.

    The server owns the model: it compiles the crypto segment once,
    plays the dealer for the offline phase, executes party 1 of the
    online protocol, and evaluates the clear layers on the noised
    boundary activation.

    Concurrency model (DESIGN.md section 8):

    * every accepted connection becomes one **session**, served start to
      finish by one worker; at most ``workers`` sessions execute the
      protocol at a time;
    * the registry admits at most ``max_sessions`` sessions (default:
      ``workers``); a connection beyond that receives an explicit
      ``busy`` hello (the client raises :class:`ServerBusy`) instead of
      a silently hung socket;
    * each session's preprocessing pools are seeded with
      :func:`derive_session_seed`, so its dealer stream — and logits —
      are byte-identical to a serial run of the same session key no
      matter how other sessions interleave. Anonymous sessions share the
      base-seeded pools (the single-client behaviour of old);
    * a malformed or vanished client is contained to its own session:
      the accept loop never sees per-connection exceptions, and failed
      handshakes are counted in ``connections_failed`` — never in
      ``connections_served``;
    * :meth:`stop` drains: in-flight sessions finish (bounded by
      ``timeout``) before their transports are force-closed.
    """

    def __init__(
        self,
        model: LayeredModel,
        boundary: float,
        config: FixedPointConfig = DEFAULT_CONFIG,
        seed: int = 0,
        host: str = "127.0.0.1",
        port: int = 0,
        program: SecureProgram | None = None,
        workers: int = 4,
        max_sessions: int | None = None,
    ):
        if workers < 1:
            raise ValueError("workers must be positive")
        self.model = model
        self.boundary = boundary
        self.config = config
        self.seed = seed
        self.host = host
        self.program = (
            program if program is not None else compile_program(model, boundary, config)
        )
        # One engine serves every session: the party-1 execution path is
        # stateless per run (the share rng belongs to party 0 only), so
        # concurrent workers may share it.
        self.engine = PartyEngine.from_program(self.program, party=1)
        self.workers = workers
        self.max_sessions = workers if max_sessions is None else max_sessions
        if self.max_sessions < 1:
            raise ValueError("max_sessions must be positive")
        self._pools: dict[tuple[int | str | None, int], PreprocessingPool] = {}
        self._pools_lock = threading.Lock()
        self._listener = PeerChannel.listen(host, port)
        self.port = self._listener.getsockname()[1]
        self._stopping = False
        # One state lock guards the registry, the counters and the
        # finished-session log; `_drained` lets stop() wait for in-flight
        # sessions and `_worker_slots` bounds concurrent protocol work.
        self._state_lock = threading.Lock()
        self._drained = threading.Condition(self._state_lock)
        self._worker_slots = threading.Semaphore(workers)
        self._active: dict[int, tuple[SessionStats, Transport]] = {}
        # Accepted connections that have not completed the handshake yet.
        # Tracked so stop() can close them and so a flood of connections
        # that never speak (slow-loris) is bounded: beyond _max_pending
        # they are dropped outright, and each pending handshake gets only
        # `handshake_timeout` (not the full protocol timeout) to send its
        # link message. Keyed by id(): Channel is a dataclass (value
        # equality), so transports are unhashable.
        self._pending: dict[int, Transport] = {}
        self._max_pending = max(32, 4 * self.max_sessions)
        self.handshake_timeout = 10.0
        self._finished: list[SessionStats] = []
        self._next_session_id = 0
        self.connections_served = 0
        self.connections_failed = 0
        self.connections_rejected = 0
        self.requests_served = 0

    # ------------------------------------------------------------------
    def pool(
        self, batch: int, session: int | str | None = None
    ) -> PreprocessingPool:
        """The (session, batch) preprocessing pool, created on demand."""
        key = (session, batch)
        with self._pools_lock:
            pool = self._pools.get(key)
            if pool is None:
                pool = PreprocessingPool(
                    self.program,
                    batch,
                    dealer_seed=derive_session_seed(self.seed, session),
                )
                self._pools[key] = pool
        return pool

    def warm(
        self, batch: int, bundles: int = 1, session: int | str | None = None
    ) -> None:
        """Pre-generate offline bundles for ``batch``-sized requests."""
        self.pool(batch, session=session).refill(bundles)

    # ------------------------------------------------------------------
    @property
    def active_sessions(self) -> int:
        with self._state_lock:
            return len(self._active)

    def serve_forever(self, once: bool = False) -> None:
        """Accept connections until :meth:`stop` (or one, with ``once``).

        The accept loop only accepts and dispatches: each connection is
        handed to a session worker thread immediately, so a slow or
        malicious client can never stall the next ``accept``.
        """
        while not self._stopping:
            try:
                transport = PeerChannel.accept(self._listener)
            except OSError:
                break  # listener closed by stop()
            worker = threading.Thread(
                target=self._session_worker,
                args=(transport,),
                name="c2pi-session",
                daemon=True,
            )
            worker.start()
            if once:
                worker.join()
                break

    def stop(self, drain: bool = True, timeout: float = 10.0) -> None:
        """Stop accepting; optionally wait for in-flight sessions.

        With ``drain`` (default) the call blocks until every admitted
        session has finished or ``timeout`` elapses; whatever is left is
        then force-closed so the caller never hangs on a wedged client.
        """
        self._stopping = True
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - platform dependent
            pass
        if drain:
            deadline = time.monotonic() + timeout
            with self._drained:
                while self._active:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._drained.wait(remaining):
                        break
        with self._state_lock:
            leftovers = [transport for _, transport in self._active.values()]
            leftovers.extend(self._pending.values())
        for transport in leftovers:
            transport.close()

    # ------------------------------------------------------------------
    def _admit(self, session_key: int | str | None, transport: Transport):
        """Register a session; returns ``(stats, rejection_reason)``.

        Rejects at capacity — and rejects a *named* key that is already
        active: two live connections drawing from one seeded pool would
        interleave its material stream and silently void the per-session
        determinism guarantee. (Anonymous sessions opt out of that
        guarantee and may share freely.)
        """
        with self._state_lock:
            if len(self._active) >= self.max_sessions:
                return None, "capacity"
            if session_key is not None and any(
                stats.session == session_key for stats, _ in self._active.values()
            ):
                return None, "session-key-in-use"
            stats = SessionStats(
                session_id=self._next_session_id, session=session_key
            )
            self._next_session_id += 1
            self._active[stats.session_id] = (stats, transport)
            # Promoted out of the handshake set: stop() must drain this
            # session, not force-close it as a stalled handshake.
            self._pending.pop(id(transport), None)
        return stats, None

    def _retire(self, stats: SessionStats, transport: Transport) -> None:
        stats.active = False
        stats.wire = transport.stats.as_dict()
        with self._drained:
            self._active.pop(stats.session_id, None)
            self._finished.append(stats)
            if stats.handshake_ok and stats.error is None:
                self.connections_served += 1
            else:
                self.connections_failed += 1
            self._drained.notify_all()

    def _session_worker(self, transport: Transport) -> None:
        """Serve one connection start to finish; exceptions stay here.

        Any per-connection failure — a vanished peer, a malformed
        request, a reshape error from a lying ``batch`` field — is
        recorded on the session and the connection closed; the accept
        loop and every other session keep running.
        """
        stats: SessionStats | None = None
        rejected = False
        with self._state_lock:
            overloaded = len(self._pending) >= self._max_pending
            if not overloaded:
                self._pending[id(transport)] = transport
        if overloaded:
            # A connection flood that outpaces handshakes: drop outright
            # rather than parking yet another thread on a silent socket.
            with self._state_lock:
                self.connections_rejected += 1
            transport.close()
            return
        try:
            # The handshake gets a short deadline of its own: a client
            # that connects and never speaks ties up this thread for
            # seconds, not the full (120 s) protocol timeout.
            protocol_timeout = transport.timeout
            transport.timeout = self.handshake_timeout
            link = transport.recv_obj("link")
            transport.timeout = protocol_timeout
            if link.get("bandwidth_bytes_per_s"):
                transport.shaper = LinkShaper(
                    link["bandwidth_bytes_per_s"], link.get("rtt_s") or 0.0
                )
            session_key = link.get("session")
            stats, rejection = self._admit(session_key, transport)
            if stats is None:
                rejected = True
                with self._state_lock:
                    self.connections_rejected += 1
                    active = len(self._active)
                transport.send_obj(
                    {
                        "protocol": PROTOCOL_VERSION,
                        "busy": True,
                        "reason": rejection,
                        "active_sessions": active,
                        "max_sessions": self.max_sessions,
                    },
                    "hello",
                )
                return
            with self._worker_slots:
                transport.send_obj(
                    {
                        "protocol": PROTOCOL_VERSION,
                        "model": self.model.name,
                        "boundary": self.boundary,
                        "session": stats.session_id,
                        "manifest": program_manifest(self.program),
                    },
                    "hello",
                )
                stats.handshake_ok = True
                while True:
                    request = transport.recv_obj("req")
                    command = request.get("cmd")
                    if command == "bye":
                        break
                    if command != "infer":
                        raise TransportError(f"unknown request: {request!r}")
                    self._serve_inference(transport, int(request["batch"]), stats)
                    with self._state_lock:
                        self.requests_served += 1
        except Exception as exc:
            # Contain the blast radius: this connection dies, the server
            # lives. TransportError covers vanished/out-of-lockstep
            # peers; anything else is a malformed request (bad batch,
            # reshape failure, ...) or an internal bug worth surfacing
            # in the metrics rather than in a dead accept loop.
            if stats is not None:
                stats.error = f"{type(exc).__name__}: {exc}"
            elif not rejected:  # a rejection already counted itself
                with self._state_lock:
                    self.connections_failed += 1
        finally:
            transport.close()
            with self._state_lock:
                self._pending.pop(id(transport), None)
            if stats is not None:
                self._retire(stats, transport)

    def _serve_inference(
        self, transport: Transport, batch: int, stats: SessionStats
    ) -> None:
        # Offline: draw a bundle, keep our half, ship the client's half.
        offline_start = time.perf_counter()
        pool = self.pool(batch, session=stats.session)
        bundle = pool.acquire_bundle()
        transport.send_blob(pack_party_bundle(split_bundle(bundle, 0)), "bundle")
        material = PartyMaterialStream(split_bundle(bundle, 1))
        offline_s = time.perf_counter() - offline_start

        # Online: our half of the protocol, then reveal + clear phase.
        before = transport.snapshot()
        online_start = time.perf_counter()
        execution = self.engine.run(transport, material, batch=batch)

        payload = transport.pull("noised-reveal")
        transport.send(0, len(payload), label="noised-reveal")
        transport.tick_round("noised-reveal")
        client_share = np.frombuffer(payload, dtype=np.uint64).reshape(
            batch, *self.program.output_shape
        )
        boundary_ring = (client_share + execution.share).astype(np.uint64)
        server_view = self.config.decode(boundary_ring)
        with nn.no_grad():
            logits = self.model.forward_from(
                nn.Tensor(server_view), self.boundary
            ).data
        online_s = time.perf_counter() - online_start
        stats.requests += 1
        stats.online_s += online_s
        stats.offline_s += offline_s

        transport.send_tensor(np.asarray(logits, dtype=np.float32), "logits")
        transport.send_obj(
            {
                "online_s": online_s,
                "offline_s": offline_s,
                "session": stats.session_id,
                "pool": pool.stats.as_dict(),
                "traffic": _snapshot_dict(transport.diff(before)),
            },
            "metrics",
        )

    # ------------------------------------------------------------------
    def metrics(self) -> dict:
        """One thread-safe snapshot: global counters, per-session stats,
        aggregated :class:`~repro.mpc.transport.WireStats` and per-pool
        offline counters."""
        with self._state_lock:
            active = [
                (stats.as_dict(), transport.stats.as_dict())
                for stats, transport in self._active.values()
            ]
            finished = [stats.as_dict() for stats in self._finished]
            counters = {
                "connections_served": self.connections_served,
                "connections_failed": self.connections_failed,
                "connections_rejected": self.connections_rejected,
                "requests_served": self.requests_served,
                "active_sessions": len(self._active),
                "workers": self.workers,
                "max_sessions": self.max_sessions,
            }
        sessions = []
        wire_total = WireStats()
        for stats_dict, live_wire in active:
            stats_dict["wire"] = live_wire
            sessions.append(stats_dict)
            wire_total.accumulate(WireStats(**live_wire))
        for stats_dict in finished:
            sessions.append(stats_dict)
            if stats_dict["wire"]:
                wire_total.accumulate(WireStats(**stats_dict["wire"]))
        sessions.sort(key=lambda entry: entry["session_id"])
        with self._pools_lock:
            pools = {
                f"session={session!r}/batch={batch}": pool.stats.as_dict()
                for (session, batch), pool in self._pools.items()
            }
        return {
            **counters,
            "sessions": sessions,
            "wire": wire_total.as_dict(),
            "pools": pools,
        }


# ----------------------------------------------------------------------
# client
# ----------------------------------------------------------------------
@dataclass
class RemoteReply:
    """One served remote inference, with measured wire-level evidence."""

    logits: np.ndarray
    online_s: float  # client-side wall clock: request sent -> logits back
    traffic: TrafficSnapshot  # protocol accounting for this request
    measured_payload_bytes: int  # raw socket payload actually moved
    offline_bytes: int  # bundle blob size (control traffic)
    server: dict  # the server's metrics message

    @property
    def prediction(self) -> np.ndarray:
        return self.logits.argmax(axis=1)

    @property
    def bytes_match(self) -> bool:
        """Measured socket payload equals the protocol's accounting."""
        return self.measured_payload_bytes == self.traffic.total_bytes


class RemoteClient:
    """The client party: owns the input and the noise, never the weights.

    ``session`` names this client's session on the server: the server
    derives the session's dealer seed from it, so re-running the same
    ``(session, seed)`` pair reproduces the logits byte for byte even if
    the original run shared the server with other clients. ``None``
    keeps the legacy anonymous behaviour (base-seeded shared pools).
    Raises :class:`ServerBusy` when the server is at ``max_sessions``.
    """

    def __init__(
        self,
        host: str,
        port: int,
        noise_magnitude: float = 0.1,
        seed: int = 0,
        network: NetworkModel | None = None,
        timeout: float | None = 120.0,
        session: int | str | None = None,
    ):
        self.session = session
        self.transport = PeerChannel.connect(
            host,
            port,
            shaper=LinkShaper.for_network(network) if network else None,
            timeout=timeout,
        )
        self.transport.send_obj(
            {
                "bandwidth_bytes_per_s": network.bandwidth_bytes_per_s
                if network
                else None,
                "rtt_s": network.rtt_s if network else None,
                "session": session,
            },
            "link",
        )
        hello = self.transport.recv_obj("hello")
        if hello.get("protocol") != PROTOCOL_VERSION:
            raise TransportError(
                f"protocol mismatch: server speaks {hello.get('protocol')}, "
                f"client speaks {PROTOCOL_VERSION}"
            )
        if hello.get("busy"):
            self.transport.close()
            if hello.get("reason") == "session-key-in-use":
                raise ServerBusy(
                    f"session key {session!r} is already active on the "
                    "server; concurrent connections must use distinct keys"
                )
            raise ServerBusy(
                "server is at capacity "
                f"({hello.get('active_sessions')}/{hello.get('max_sessions')} "
                "sessions); retry later"
            )
        self.server_model = hello["model"]
        self.boundary = hello["boundary"]
        self.server_session_id = hello.get("session")
        self.manifest = hello["manifest"]
        self.engine = PartyEngine.from_manifest(self.manifest, share_seed=seed + 1)
        self.config = self.engine.config
        self.noise = NoiseMechanism(noise_magnitude, seed=seed)

    @property
    def input_shape(self) -> tuple[int, ...]:
        return self.engine.input_shape

    # ------------------------------------------------------------------
    def infer(self, images: np.ndarray) -> RemoteReply:
        """Run one private inference on a float NCHW batch."""
        images = np.asarray(images, dtype=np.float32)
        if images.ndim == 3:
            images = images[None]
        transport = self.transport
        transport.send_obj({"cmd": "infer", "batch": int(images.shape[0])}, "req")
        blob = transport.recv_blob("bundle")
        material = PartyMaterialStream(unpack_party_bundle(blob))

        before = transport.snapshot()
        raw_before = transport.stats.raw_payload_total
        start = time.perf_counter()
        execution = self.engine.run(transport, material, x=images)

        perturbed = self.noise.perturb_share(execution.share, self.config)
        transport.push(np.ascontiguousarray(perturbed).tobytes(), "noised-reveal")
        transport.send(0, perturbed.nbytes, label="noised-reveal")
        transport.tick_round("noised-reveal")

        logits = transport.recv_tensor("logits")
        server_metrics = transport.recv_obj("metrics")
        online_s = time.perf_counter() - start
        return RemoteReply(
            logits=logits,
            online_s=online_s,
            traffic=transport.diff(before),
            measured_payload_bytes=transport.stats.raw_payload_total - raw_before,
            offline_bytes=len(blob),
            server=server_metrics,
        )

    def close(self) -> None:
        try:
            self.transport.send_obj({"cmd": "bye"}, "req")
        except TransportError:  # pragma: no cover - server already gone
            pass
        self.transport.close()


# ----------------------------------------------------------------------
# measured vs modeled benchmark
# ----------------------------------------------------------------------
def benchmark_networked(
    model: LayeredModel,
    boundary: float,
    images: np.ndarray,
    max_batch: int = 4,
    noise_magnitude: float = 0.1,
    seed: int = 0,
    networks: tuple[NetworkModel, ...] = (),
) -> dict:
    """Measure real transported serving and compare with the cost model.

    Runs a :class:`RemoteServer` on a loopback socket (in a background
    thread — use the CLI pair for full process isolation), serves the
    images in ``max_batch`` coalesced requests, and reports:

    * the unshaped loopback run: measured online seconds, socket payload
      vs protocol accounting (``bytes_match``);
    * for each shaped network: the measured wall-clock under token-bucket
      bandwidth + injected RTT, side by side with the
      :meth:`NetworkModel.latency` prediction fed the *same run's*
      directional traffic, rounds and loopback compute time.
    """
    images = np.asarray(images, dtype=np.float32)
    if images.ndim == 3:
        images = images[None]
    groups = [
        images[start : start + max_batch]
        for start in range(0, images.shape[0], max_batch)
    ]

    server = RemoteServer(model, boundary, seed=seed)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    report: dict = {"listen": f"{server.host}:{server.port}"}
    try:
        # --- unshaped loopback: ground truth for compute + accounting.
        client = RemoteClient(
            "127.0.0.1", server.port, noise_magnitude=noise_magnitude, seed=seed
        )
        loopback_replies = [client.infer(group) for group in groups]
        client.close()
        loopback = {
            "online_s": sum(r.online_s for r in loopback_replies),
            "offline_bundle_bytes": sum(r.offline_bytes for r in loopback_replies),
            "bytes": sum(r.traffic.total_bytes for r in loopback_replies),
            "measured_payload_bytes": sum(
                r.measured_payload_bytes for r in loopback_replies
            ),
            "rounds": sum(r.traffic.rounds for r in loopback_replies),
            "bytes_match": all(r.bytes_match for r in loopback_replies),
            "predictions": [int(p) for r in loopback_replies for p in r.prediction],
        }
        report["loopback"] = loopback

        # --- shaped runs: measured wall clock vs modeled latency.
        for network in networks:
            client = RemoteClient(
                "127.0.0.1",
                server.port,
                noise_magnitude=noise_magnitude,
                seed=seed,
                network=network,
            )
            measured = 0.0
            modeled = 0.0
            for group, loopback_reply in zip(groups, loopback_replies):
                reply = client.infer(group)
                measured += reply.online_s
                modeled += network.latency_of(
                    reply.traffic, compute_s=loopback_reply.online_s
                )
            client.close()
            report[network.name] = {
                "measured_s": measured,
                "modeled_s": modeled,
                "measured_over_modeled": measured / modeled if modeled else None,
            }
    finally:
        server.stop()
        thread.join(timeout=10.0)
    return report


# ----------------------------------------------------------------------
# concurrent multi-session benchmark
# ----------------------------------------------------------------------
def benchmark_concurrent(
    model: LayeredModel,
    boundary: float,
    images: np.ndarray,
    clients: int = 4,
    max_batch: int = 4,
    noise_magnitude: float = 0.1,
    seed: int = 0,
    workers: int | None = None,
    network: NetworkModel | None = None,
) -> dict:
    """Measure multi-session throughput scaling — with determinism pinned.

    Every client ``c`` runs the identical workload (``images`` coalesced
    into ``max_batch`` requests) as session ``c`` with client seed
    ``seed + c``, twice against identically-seeded servers:

    1. **serial** — sessions run one after another, one connection at a
       time: the single-client baseline, repeated ``clients`` times;
    2. **concurrent** — all sessions at once against one server with
       ``workers`` session workers.

    Both passes warm every session's preprocessing pools *before* the
    timed window (the warm seconds are reported separately as
    ``offline_warm_s``), so the measurement is online serving
    throughput — the amortised quantity C2PI's offline/online split
    optimises for. Warming draws the identical dealer stream the
    miss-path would have drawn, so it changes no bytes.

    ``network`` shapes every connection (token-bucket bandwidth +
    injected RTT, each session on its own emulated link). This is where
    concurrency pays even on one core: a serial accept loop leaves the
    server idle for every round-trip of the one client it is stuck on,
    while concurrent sessions overlap their network waits (and, on
    multi-core hosts, their numpy compute).

    The report carries wall-clock and requests/s for both passes, the
    speedup, and two correctness pins: every reply's measured socket
    payload equals its protocol accounting (``bytes_match``), and every
    session's logits under contention are **byte-identical** to its
    serial run (``logits_match_serial``) — the per-session dealer-seed
    derivation at work. This is ``c2pi serve-bench --networked
    --clients N``.
    """
    if clients < 1:
        raise ValueError("clients must be positive")
    images = np.asarray(images, dtype=np.float32)
    if images.ndim == 3:
        images = images[None]
    groups = [
        images[start : start + max_batch]
        for start in range(0, images.shape[0], max_batch)
    ]
    workers = clients if workers is None else workers
    program = compile_program(model, boundary, DEFAULT_CONFIG)

    def run_session(port: int, session: int) -> list[RemoteReply]:
        client = RemoteClient(
            "127.0.0.1",
            port,
            noise_magnitude=noise_magnitude,
            seed=seed + session,
            session=session,
            network=network,
        )
        replies = [client.infer(group) for group in groups]
        client.close()
        return replies

    # Per-session pool demand: warmed before the timed window in both
    # passes, so the measurement is *online* serving throughput (the
    # offline phase is the amortised cost the paper's split pays ahead
    # of time). Warming upfront draws the identical dealer stream the
    # miss-path would have drawn, so logits are unchanged.
    group_sizes: dict[int, int] = {}
    for group in groups:
        size = int(group.shape[0])
        group_sizes[size] = group_sizes.get(size, 0) + 1

    def run_pass(concurrent: bool):
        server = RemoteServer(
            model,
            boundary,
            seed=seed,
            program=program,
            workers=workers,
            max_sessions=max(clients, workers),
        )
        accept_thread = threading.Thread(target=server.serve_forever, daemon=True)
        accept_thread.start()
        replies: dict[int, list[RemoteReply]] = {}
        try:
            offline_start = time.perf_counter()
            for session in range(clients):
                for size, count in group_sizes.items():
                    server.warm(size, bundles=count, session=session)
            offline_s = time.perf_counter() - offline_start
            start = time.perf_counter()
            if concurrent:
                def worker(session: int) -> None:
                    replies[session] = run_session(server.port, session)

                threads = [
                    threading.Thread(target=worker, args=(session,))
                    for session in range(clients)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
            else:
                for session in range(clients):
                    replies[session] = run_session(server.port, session)
            wall_s = time.perf_counter() - start
        finally:
            server.stop()
            accept_thread.join(timeout=10.0)
        return wall_s, offline_s, replies, server.metrics()

    serial_s, serial_offline_s, serial_replies, _ = run_pass(concurrent=False)
    concurrent_s, concurrent_offline_s, concurrent_replies, server_metrics = run_pass(
        concurrent=True
    )

    # "Requests" are protocol requests (infer round-trips, matching the
    # server's `requests_served`); each coalesces up to max_batch images.
    requests_per_client = len(groups)
    images_per_client = int(images.shape[0])
    total_requests = clients * requests_per_client
    total_images = clients * images_per_client
    logits_match = all(
        a.logits.tobytes() == b.logits.tobytes()
        for session in range(clients)
        for a, b in zip(serial_replies[session], concurrent_replies[session])
    )
    bytes_match = all(
        reply.bytes_match
        for replies in concurrent_replies.values()
        for reply in replies
    )
    per_session = [
        {
            "session": session,
            "requests": requests_per_client,
            "images": images_per_client,
            "online_s": sum(r.online_s for r in concurrent_replies[session]),
            "predictions": [
                int(p) for r in concurrent_replies[session] for p in r.prediction
            ],
        }
        for session in range(clients)
    ]

    def pace(wall_s: float) -> dict:
        return {
            "wall_s": wall_s,
            "throughput_rps": total_requests / wall_s if wall_s else 0.0,
            "inferences_per_s": total_images / wall_s if wall_s else 0.0,
        }

    return {
        "clients": clients,
        "workers": workers,
        "max_batch": max_batch,
        "network": network.name if network else "loopback",
        "requests_per_client": requests_per_client,
        "images_per_client": images_per_client,
        "total_requests": total_requests,
        "total_images": total_images,
        "serial": {**pace(serial_s), "offline_warm_s": serial_offline_s},
        "concurrent": {**pace(concurrent_s), "offline_warm_s": concurrent_offline_s},
        "speedup": serial_s / concurrent_s if concurrent_s else float("inf"),
        "bytes_match": bytes_match,
        "logits_match_serial": logits_match,
        "per_session": per_session,
        "server": server_metrics,
    }


# ----------------------------------------------------------------------
# deterministic demonstration server (two-process tests, CI smoke)
# ----------------------------------------------------------------------
def _demo_victim(arch: str, width: float, rng_seed: int) -> LayeredModel:
    from ..models import alexnet, resnet20, vgg16, vgg19

    makers = {
        "alexnet": alexnet,
        "vgg16": vgg16,
        "vgg19": vgg19,
        "resnet20": resnet20,
    }
    rng = np.random.default_rng(rng_seed)
    return makers[arch](width_mult=width, rng=rng).eval()


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.serve.remote``: a deterministic loopback server.

    The victim is *untrained* but fully determined by
    ``(arch, width, model-seed)``, so a test or example process can
    rebuild the identical model and check logits byte for byte.
    """
    import argparse

    parser = argparse.ArgumentParser(description="C2PI demonstration server")
    parser.add_argument("--arch", default="resnet20",
                        choices=("alexnet", "vgg16", "vgg19", "resnet20"))
    parser.add_argument("--width", type=float, default=0.25)
    parser.add_argument("--model-seed", type=int, default=0)
    parser.add_argument("--boundary", type=float, default=3.5)
    parser.add_argument("--seed", type=int, default=0, help="dealer seed")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--once", action="store_true",
                        help="serve a single connection, then exit")
    parser.add_argument("--workers", type=int, default=4,
                        help="concurrent session workers")
    parser.add_argument("--max-sessions", type=int, default=None,
                        help="admission bound (default: --workers)")
    args = parser.parse_args(argv)

    model = _demo_victim(args.arch, args.width, args.model_seed)
    server = RemoteServer(
        model, args.boundary, seed=args.seed, host=args.host, port=args.port,
        workers=args.workers, max_sessions=args.max_sessions,
    )
    print(f"listening on {server.host}:{server.port}", flush=True)
    server.serve_forever(once=args.once)
    return 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
