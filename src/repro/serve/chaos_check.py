"""``c2pi chaos-check``: a deterministic chaos self-check for the serving stack.

Runs a battery of scripted network faults (:mod:`repro.mpc.chaos`)
against a live :class:`~repro.serve.remote.RemoteServer` on a loopback
socket and verifies the recovery contract end to end:

* the faulted request succeeds on retry with logits **byte-identical**
  to a fault-free run of the same session (same dealer bundle replayed
  server-side, same rng draws replayed client-side);
* the server survives every fault and still serves a clean session;
* pool accounting balances — every acquired bundle is either served,
  returned intact, or poisoned; none is double-sold or leaked.

The victim is a deliberately tiny convnet (:func:`tiny_victim`): the
properties under test are protocol-level and model-independent, and a
small model keeps the check fast enough to run on every CI push. Each
case prints its :class:`~repro.mpc.chaos.ChaosTrace` one-liner, which is
also the replay recipe: feed it back as an explicit schedule to
reproduce the exact failure.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from .. import nn
from ..models.layered import LayeredModel
from ..mpc.chaos import ChaosController, FaultSpec
from ..mpc.transport import TransportError
from .remote import RemoteClient, RemoteServer

__all__ = ["TINY_BOUNDARY", "tiny_victim", "CHAOS_CASES", "run_chaos_check", "main"]

#: crypto/clear boundary for :func:`tiny_victim` — the crypto segment
#: covers conv1/ReLU/maxpool/conv2/ReLU (linear + boolean protocol
#: phases), the clear tail flatten + the linear head.
TINY_BOUNDARY = 2.5


def tiny_victim(seed: int = 0) -> LayeredModel:
    """A deterministic 5-class demo convnet on 2x8x8 inputs.

    Small enough that one remote inference costs milliseconds, yet its
    compiled program exercises every protocol phase a resnet does:
    masked linear layers, the bitsliced DReLU circuit (ReLU and the
    maxpool tournament), truncation and the noised reveal.
    """
    rng = np.random.default_rng(seed)
    body = [
        nn.Conv2d(2, 4, 3, padding=1),
        nn.ReLU(),
        nn.MaxPool2d(2, 2),
        nn.Conv2d(4, 4, 3, padding=1),
        nn.ReLU(),
        nn.Flatten(),
        nn.Linear(4 * 4 * 4, 5),
    ]
    model = LayeredModel(body, "chaos-demo", (2, 8, 8))
    for parameter in model.parameters():
        parameter.data = rng.normal(0, 0.3, parameter.data.shape).astype(np.float32)
    return model.eval()


#: The scripted battery: one fault per protocol phase and kind family.
CHAOS_CASES: tuple[FaultSpec, ...] = (
    FaultSpec("drop", label="link"),  # handshake vanishes
    FaultSpec("corrupt", label="input-share", request=1),
    FaultSpec("partial", label="and-open", occurrence=2, request=1),
    FaultSpec("stall", label="noised-reveal", request=0),
    FaultSpec("drop", label="logits", direction="recv", request=1),
)


def _serve(model, seed: int, request_timeout: float) -> tuple[RemoteServer, threading.Thread]:
    server = RemoteServer(
        model, TINY_BOUNDARY, seed=seed, request_timeout=request_timeout
    )
    server.handshake_timeout = request_timeout
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread


def _run_session(port: int, images, *, session, seed, controller=None,
                 retries: int = 0, timeout: float = 5.0) -> list[bytes]:
    client = RemoteClient(
        "127.0.0.1",
        port,
        noise_magnitude=0.1,
        seed=seed,
        session=session,
        timeout=timeout,
        transport_wrapper=controller.wrap if controller else None,
        connect_retries=retries,
    )
    logits = [client.infer(batch, retries=retries).logits.tobytes() for batch in images]
    client.close()
    return logits


def run_chaos_check(seed: int = 0, request_timeout: float = 0.5,
                    verbose: bool = True) -> int:
    """Run every scripted case; returns the number of failures (0 = pass)."""
    model = tiny_victim(seed)
    images = np.random.default_rng(seed + 1).random((2, 1, 2, 8, 8), np.float32)

    # The fault-free reference for session "chaos"/client seed: computed
    # once on its own identically-seeded server.
    server, thread = _serve(model, seed, request_timeout)
    try:
        baseline = _run_session(server.port, images, session="chaos", seed=seed + 7)
    finally:
        server.stop()
        thread.join(timeout=10.0)

    failures = 0
    for spec in CHAOS_CASES:
        controller = ChaosController([spec])
        server, thread = _serve(model, seed, request_timeout)
        start = time.perf_counter()
        try:
            faulted = _run_session(
                server.port, images, session="chaos", seed=seed + 7,
                controller=controller, retries=3,
            )
            clean = _run_session(server.port, images, session="clean", seed=seed + 8)
            metrics = server.metrics()
        except (AssertionError, TransportError, OSError, ValueError) as exc:
            # The check reports failures, it does not raise them.
            failures += 1
            if verbose:
                print(f"FAIL {spec.describe():<40} {type(exc).__name__}: {exc}")
            continue
        finally:
            server.stop()
            thread.join(timeout=10.0)
        elapsed = time.perf_counter() - start
        problems = []
        if not controller.trace.events:
            problems.append("fault never fired")
        if faulted != baseline:
            problems.append("retried logits differ from the fault-free run")
        if len(clean) != len(images):
            problems.append("bystander session not served")
        for name, pool in metrics["pools"].items():
            outstanding = (
                pool["bundles_consumed"]
                - pool["bundles_returned"]
                - pool["bundles_poisoned"]
            )
            if outstanding != len(images):
                problems.append(
                    f"pool {name} unbalanced: consumed={pool['bundles_consumed']} "
                    f"returned={pool['bundles_returned']} "
                    f"poisoned={pool['bundles_poisoned']} served={len(images)}"
                )
        status = "FAIL" if problems else "PASS"
        failures += bool(problems)
        if verbose:
            detail = "; ".join(problems) if problems else (
                f"trace={controller.trace.describe()}  "
                f"retried={metrics['requests_retried']}  "
                f"reaped={metrics['sessions_reaped']}  {elapsed:.2f}s"
            )
            print(f"{status} {spec.describe():<40} {detail}")
    if verbose:
        total = len(CHAOS_CASES)
        print(f"chaos-check: {total - failures}/{total} cases recovered")
    return failures


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description="C2PI chaos self-check")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--request-timeout", type=float, default=0.5)
    args = parser.parse_args(argv)
    return 1 if run_chaos_check(args.seed, args.request_timeout) else 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
