"""``repro.serve`` — the batched C2PI serving layer.

Compile-once, serve-many deployment of the C2PI pipeline:
:class:`C2PIServer` keeps one compiled
:class:`~repro.mpc.program.SecureProgram`, warm offline preprocessing
pools, and coalesces queued requests into batched secure executions.
"""

from .server import (
    C2PIServer,
    InferenceReply,
    InferenceRequest,
    ServerMetrics,
    benchmark_serving,
)

__all__ = [
    "C2PIServer",
    "InferenceReply",
    "InferenceRequest",
    "ServerMetrics",
    "benchmark_serving",
]
