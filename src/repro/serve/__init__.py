"""``repro.serve`` — the batched C2PI serving layer.

Compile-once, serve-many deployment of the C2PI pipeline:
:class:`C2PIServer` keeps one compiled
:class:`~repro.mpc.program.SecureProgram`, warm offline preprocessing
pools, and coalesces queued requests into batched secure executions.

:mod:`repro.serve.remote` is the *two-process* deployment of the same
flow: :class:`RemoteServer` / :class:`RemoteClient` run the compiled
program between real processes over the socket transport
(``c2pi serve --listen`` / ``c2pi client``), shipping offline bundles
ahead of the online phase and measuring actual wire traffic. The server
is concurrent: a bounded worker pool serves one session per connection,
each session's dealer seed derived from its session key
(:func:`~repro.serve.remote.derive_session_seed`), with busy-reply
backpressure past ``max_sessions`` and graceful drain on ``stop()``.

:mod:`repro.serve.loadgen` (``c2pi loadgen``) drives that server with an
open-loop sustained load — many concurrent sessions, Poisson or
fixed-rate arrivals — and gates tail latency, SLO violations and serial
byte-identity against a committed snapshot.
"""

from .chaos_check import run_chaos_check, tiny_victim
from .loadgen import check_load_snapshot, run_loadgen
from .remote import (
    RemoteClient,
    RemoteReply,
    RemoteServer,
    ServerBusy,
    SessionStats,
    benchmark_concurrent,
    benchmark_networked,
    derive_session_seed,
)
from .server import (
    C2PIServer,
    InferenceReply,
    InferenceRequest,
    ServerMetrics,
    benchmark_serving,
)

__all__ = [
    "C2PIServer",
    "InferenceReply",
    "InferenceRequest",
    "ServerMetrics",
    "benchmark_serving",
    "RemoteServer",
    "RemoteClient",
    "RemoteReply",
    "ServerBusy",
    "SessionStats",
    "derive_session_seed",
    "benchmark_networked",
    "benchmark_concurrent",
    "run_chaos_check",
    "tiny_victim",
    "run_loadgen",
    "check_load_snapshot",
]
