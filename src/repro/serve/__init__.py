"""``repro.serve`` — the batched C2PI serving layer.

Compile-once, serve-many deployment of the C2PI pipeline:
:class:`C2PIServer` keeps one compiled
:class:`~repro.mpc.program.SecureProgram`, warm offline preprocessing
pools, and coalesces queued requests into batched secure executions.

:mod:`repro.serve.remote` is the *two-process* deployment of the same
flow: :class:`RemoteServer` / :class:`RemoteClient` run the compiled
program between real processes over the socket transport
(``c2pi serve --listen`` / ``c2pi client``), shipping offline bundles
ahead of the online phase and measuring actual wire traffic.
"""

from .remote import RemoteClient, RemoteReply, RemoteServer, benchmark_networked
from .server import (
    C2PIServer,
    InferenceReply,
    InferenceRequest,
    ServerMetrics,
    benchmark_serving,
)

__all__ = [
    "C2PIServer",
    "InferenceReply",
    "InferenceRequest",
    "ServerMetrics",
    "benchmark_serving",
    "RemoteServer",
    "RemoteClient",
    "RemoteReply",
    "benchmark_networked",
]
