"""``c2pi loadgen``: an open-loop sustained-load harness for the serving stack.

The async session core's claim is a *load* claim — many concurrent
sessions overlap their network waits on one event loop, bounded protocol
work on a small worker pool — so it gets the same trajectory discipline
as the protocol hot path: a measured run, a committed snapshot
(``benchmarks/BENCH_serve_load.json``) and a machine-normalised
regression gate (:func:`check_load_snapshot`).

The generator is **open-loop**: arrivals follow a fixed-rate or Poisson
schedule computed up front, independent of completions, and a request's
latency is measured from its *scheduled* arrival — a server that falls
behind accrues queueing delay instead of silently throttling the
offered load (the coordinated-omission trap closed-loop drivers fall
into). Each session is one persistent :class:`~repro.serve.remote.RemoteClient`
in lock-step with its server session, exactly like a real tenant.

Determinism is load-bearing: every session's request stream is seeded,
so after the load run the same streams are replayed **serially** against
a fresh identically-seeded server and the logits must match byte for
byte (``logits_match_serial``) — per-session crypto streams may not be
perturbed by 64 neighbours, retries, or chaos faults. ``--soak`` layers
seeded random corrupt/partial faults (:mod:`repro.mpc.chaos`) on a
subset of sessions while keeping that same byte-identity bar.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from ..bench.protocols import DEFAULT_TOLERANCE, calibration_workload_s
from ..mpc.chaos import ChaosController
from .chaos_check import TINY_BOUNDARY, tiny_victim
from .remote import RemoteClient, RemoteServer

__all__ = [
    "LATENCY_BUCKETS_MS",
    "build_schedule",
    "check_load_snapshot",
    "main",
    "render_load_report",
    "run_from_args",
    "run_loadgen",
]

#: Histogram bucket upper bounds (ms); the last bucket is open-ended.
LATENCY_BUCKETS_MS = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0,
    500.0, 1000.0, 2000.0, 5000.0, 10000.0, float("inf"),
)

# Latency under load rides the host scheduler much harder than the
# single-stream placement bench: the gate compares the *median* (the
# p95 of 64 threads on one core swings 2x between identical runs),
# doubles the relative band and adds a wide absolute floor; tail
# blowups are caught by the SLO-violation-rate gate instead. Identity
# metrics (errors, wedges, logits) are exact — they are the point of
# the harness.
_LATENCY_ABS_FLOOR_MS = 150.0
_SLO_RATE_SLACK = 0.10


def build_schedule(
    total: int, rate: float, dist: str, rng: np.random.Generator
) -> np.ndarray:
    """Arrival offsets (seconds from start) for ``total`` open-loop requests."""
    if total < 1:
        raise ValueError("need at least one request")
    if rate <= 0:
        raise ValueError("arrival rate must be positive")
    if dist == "fixed":
        gaps = np.full(total, 1.0 / rate)
    elif dist == "poisson":
        gaps = rng.exponential(1.0 / rate, size=total)
    else:
        raise ValueError(f"unknown arrival distribution {dist!r}")
    return np.cumsum(gaps)


@dataclass
class _SessionResult:
    """One session thread's collected outcomes."""

    session: str
    client_seed: int
    image_indices: list[int]
    arrivals: list[float]
    latencies_ms: list[float] = field(default_factory=list)
    logits: list[bytes] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)
    retried: int = 0
    faults: int = 0
    wedged: bool = False


def _session_worker(
    result: _SessionResult,
    host: str,
    port: int,
    images: np.ndarray,
    start_s: float,
    noise_magnitude: float,
    retries: int,
    controller: ChaosController | None,
) -> None:
    try:
        client = RemoteClient(
            host,
            port,
            noise_magnitude=noise_magnitude,
            seed=result.client_seed,
            session=result.session,
            timeout=30.0,
            transport_wrapper=controller.wrap if controller else None,
            wait_for_slot=True,
            reconnect_timeout=30.0,
        )
    except Exception as exc:  # noqa: BLE001 - reported, not raised
        result.errors.append(f"connect: {type(exc).__name__}: {exc}")
        return
    try:
        for arrival, image_index in zip(result.arrivals, result.image_indices):
            wait = start_s + arrival - time.perf_counter()
            if wait > 0:
                time.sleep(wait)
            try:
                reply = client.infer(images[image_index][None], retries=retries)
            except Exception as exc:  # noqa: BLE001 - reported, not raised
                result.errors.append(f"infer: {type(exc).__name__}: {exc}")
                continue
            result.latencies_ms.append(
                (time.perf_counter() - (start_s + arrival)) * 1e3
            )
            result.logits.append(reply.logits.tobytes())
        result.retried = client.requests_retried
    finally:
        try:
            client.close()
        except Exception:  # noqa: BLE001 - teardown best effort
            pass
        if controller is not None:
            result.faults = len(controller.trace.events)


def _serial_reference(
    model,
    boundary: float,
    seed: int,
    images: np.ndarray,
    results: list[_SessionResult],
    noise_magnitude: float,
    workers: int,
) -> bool:
    """Replay every session serially on a fresh server; compare bytes."""
    server = RemoteServer(
        model, boundary, seed=seed, workers=workers,
        max_sessions=len(results) + 2,
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        for result in results:
            client = RemoteClient(
                "127.0.0.1",
                server.port,
                noise_magnitude=noise_magnitude,
                seed=result.client_seed,
                session=result.session,
                timeout=30.0,
            )
            serial = [
                client.infer(images[index][None]).logits.tobytes()
                for index in result.image_indices
            ]
            client.close()
            if serial != result.logits:
                return False
        return True
    finally:
        server.stop()
        thread.join(timeout=10.0)


def _percentile(latencies: list[float], q: float) -> float:
    return float(np.percentile(np.asarray(latencies), q)) if latencies else 0.0


def run_loadgen(
    sessions: int = 8,
    rate: float = 50.0,
    dist: str = "poisson",
    requests: int = 128,
    slo_ms: float = 500.0,
    seed: int = 0,
    noise_magnitude: float = 0.1,
    workers: int = 4,
    retries: int = 3,
    soak: bool = False,
    soak_rate: float = 0.01,
    soak_every: int = 4,
    check_serial: bool = True,
    wedge_timeout_s: float = 120.0,
    image_pool: int = 8,
) -> dict:
    """Drive a live server with ``sessions`` concurrent open-loop clients.

    Spawns an in-process :class:`~repro.serve.remote.RemoteServer` over
    the tiny chaos victim (the properties under load are protocol- and
    system-level, not model-level), runs the schedule, then — unless
    ``check_serial`` is off — replays every session serially against a
    fresh same-seeded server and pins byte identity. Returns the
    JSON-able snapshot dict :func:`check_load_snapshot` gates.
    """
    if sessions < 1:
        raise ValueError("need at least one session")
    if requests < sessions:
        raise ValueError("need at least one request per session")
    model = tiny_victim(seed)
    rng = np.random.default_rng(seed + 1)
    images = rng.random((image_pool, 2, 8, 8), dtype=np.float32)
    arrivals = build_schedule(requests, rate, dist, rng)

    results: list[_SessionResult] = []
    for index in range(sessions):
        own = list(range(index, requests, sessions))
        results.append(
            _SessionResult(
                session=f"load-{index}",
                client_seed=seed + 100 + index,
                image_indices=[k % image_pool for k in own],
                arrivals=[float(arrivals[k]) for k in own],
            )
        )

    controllers: dict[int, ChaosController] = {}
    if soak:
        for index in range(0, sessions, max(1, soak_every)):
            controllers[index] = ChaosController.random(
                seed=seed + 1000 + index, rate=soak_rate,
                kinds=("corrupt", "partial"),
            )

    server = RemoteServer(
        model, TINY_BOUNDARY, seed=seed, workers=workers,
        max_sessions=sessions + 2, request_timeout=30.0,
    )
    serve_thread = threading.Thread(target=server.serve_forever, daemon=True)
    serve_thread.start()
    wall_start = time.perf_counter()
    try:
        start_s = time.perf_counter() + 0.05  # let every thread arm first
        threads = [
            threading.Thread(
                target=_session_worker,
                name=f"c2pi-loadgen-{index}",
                args=(
                    result, "127.0.0.1", server.port, images, start_s,
                    noise_magnitude, retries, controllers.get(index),
                ),
                daemon=True,
            )
            for index, result in enumerate(results)
        ]
        for thread in threads:
            thread.start()
        deadline = start_s + float(arrivals[-1]) + wedge_timeout_s
        for result, thread in zip(results, threads):
            thread.join(timeout=max(0.0, deadline - time.perf_counter()))
            if thread.is_alive():
                result.wedged = True
        elapsed_s = time.perf_counter() - wall_start
        server_metrics = server.metrics()
    finally:
        server.stop(drain=not any(result.wedged for result in results))
        serve_thread.join(timeout=10.0)

    latencies = [value for result in results for value in result.latencies_ms]
    completed = len(latencies)
    errors = [message for result in results for message in result.errors]
    wedged = sum(result.wedged for result in results)
    violations = sum(value > slo_ms for value in latencies)
    counts = [0] * len(LATENCY_BUCKETS_MS)
    for value in latencies:
        for bucket, bound in enumerate(LATENCY_BUCKETS_MS):
            if value <= bound:
                counts[bucket] += 1
                break

    logits_match = None
    if check_serial and not errors and not wedged:
        logits_match = _serial_reference(
            model, TINY_BOUNDARY, seed, images, results, noise_magnitude, workers
        )
    elif check_serial:
        logits_match = False  # incomplete streams cannot be byte-checked

    return {
        "schema": 1,
        "model": model.name,
        "boundary": TINY_BOUNDARY,
        "seed": seed,
        "sessions": sessions,
        "rate_rps": rate,
        "dist": dist,
        "requests": requests,
        "workers": workers,
        "slo_ms": slo_ms,
        "soak": {
            "enabled": soak,
            "rate": soak_rate if soak else 0.0,
            "chaos_sessions": len(controllers),
            "faults_injected": sum(result.faults for result in results),
        },
        "calibration_s": calibration_workload_s(),
        "elapsed_s": elapsed_s,
        "offered_duration_s": float(arrivals[-1]),
        "completed": completed,
        "errors": len(errors),
        "error_samples": errors[:5],
        "wedged_sessions": wedged,
        "requests_retried": sum(result.retried for result in results),
        "server_requests_retried": server_metrics["requests_retried"],
        "throughput_rps": completed / elapsed_s if elapsed_s else 0.0,
        "latency_ms": {
            "p50": _percentile(latencies, 50),
            "p95": _percentile(latencies, 95),
            "p99": _percentile(latencies, 99),
            "mean": float(np.mean(latencies)) if latencies else 0.0,
            "max": float(np.max(latencies)) if latencies else 0.0,
        },
        "slo_violations": violations,
        "slo_violation_rate": violations / completed if completed else 1.0,
        "logits_match_serial": logits_match,
        "histogram": {
            "bucket_upper_ms": [
                bound if bound != float("inf") else None
                for bound in LATENCY_BUCKETS_MS
            ],
            "counts": counts,
        },
    }


def check_load_snapshot(
    fresh: dict, snapshot: dict, tolerance: float = DEFAULT_TOLERANCE
) -> list[str]:
    """Gate a fresh load run against the committed snapshot.

    Identity metrics are exact: zero errors, zero wedged sessions, every
    offered request completed, logits byte-identical to the serial
    replay, and the workload shape matching the snapshot (a gate over a
    different offered load would compare nothing). Median latency is
    gated after calibration normalisation with the widened band
    sustained-load wall time needs; the tail is gated through the
    SLO-violation rate, which a wedge or overload regression drives up
    far more reliably than a one-core p95 stays down.
    """
    failures: list[str] = []
    for key in ("sessions", "requests", "rate_rps", "dist", "slo_ms"):
        if fresh.get(key) != snapshot.get(key):
            failures.append(
                f"workload mismatch on {key}: fresh {fresh.get(key)!r} vs "
                f"snapshot {snapshot.get(key)!r}"
            )
    if fresh.get("errors"):
        failures.append(
            f"{fresh['errors']} request(s) errored: {fresh.get('error_samples')}"
        )
    if fresh.get("wedged_sessions"):
        failures.append(f"{fresh['wedged_sessions']} session(s) wedged")
    if fresh.get("completed") != fresh.get("requests"):
        failures.append(
            f"only {fresh.get('completed')}/{fresh.get('requests')} requests "
            "completed"
        )
    if fresh.get("logits_match_serial") is not True:
        failures.append(
            "logits are not byte-identical to the serial replay "
            f"(logits_match_serial={fresh.get('logits_match_serial')!r})"
        )
    scale = fresh["calibration_s"] / max(snapshot["calibration_s"], 1e-9)
    budget = (
        snapshot["latency_ms"]["p50"] * scale * (1.0 + 2.0 * tolerance)
        + _LATENCY_ABS_FLOOR_MS
    )
    if fresh["latency_ms"]["p50"] > budget:
        failures.append(
            f"p50 latency regressed: {fresh['latency_ms']['p50']:.1f} ms vs "
            f"budget {budget:.1f} ms (snapshot "
            f"{snapshot['latency_ms']['p50']:.1f} ms, machine scale "
            f"x{scale:.2f})"
        )
    allowed = snapshot.get("slo_violation_rate", 0.0) + _SLO_RATE_SLACK
    if fresh.get("slo_violation_rate", 1.0) > allowed:
        failures.append(
            f"SLO violation rate regressed: {fresh['slo_violation_rate']:.1%} "
            f"vs allowed {allowed:.1%}"
        )
    return failures


def render_load_report(report: dict) -> str:
    latency = report["latency_ms"]
    soak = report["soak"]
    lines = [
        f"loadgen: {report['sessions']} sessions, "
        f"{report['requests']} requests at {report['rate_rps']:g} rps "
        f"({report['dist']}), {report['workers']} workers",
        f"  completed {report['completed']}/{report['requests']}  "
        f"errors={report['errors']}  wedged={report['wedged_sessions']}  "
        f"retried={report['requests_retried']}",
        f"  throughput {report['throughput_rps']:.1f} rps over "
        f"{report['elapsed_s']:.2f}s "
        f"(offered window {report['offered_duration_s']:.2f}s)",
        f"  latency ms  p50={latency['p50']:.1f}  p95={latency['p95']:.1f}  "
        f"p99={latency['p99']:.1f}  max={latency['max']:.1f}",
        f"  SLO {report['slo_ms']:g} ms: {report['slo_violations']} "
        f"violation(s) ({report['slo_violation_rate']:.1%})",
        f"  logits_match_serial={report['logits_match_serial']}",
    ]
    if soak["enabled"]:
        lines.append(
            f"  soak: {soak['faults_injected']} fault(s) across "
            f"{soak['chaos_sessions']} chaos session(s) at rate {soak['rate']:g}"
        )
    return "\n".join(lines)


def run_from_args(args) -> int:
    """Execute the load harness for a parsed argument namespace."""
    report = run_loadgen(
        sessions=args.sessions,
        rate=args.rate,
        dist=args.dist,
        requests=args.requests,
        slo_ms=args.slo_ms,
        seed=args.seed,
        workers=args.workers,
        retries=args.retries,
        soak=args.soak,
        soak_rate=args.soak_rate,
        check_serial=not args.skip_serial,
    )
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(render_load_report(report))
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.output}")
    if args.histogram:
        with open(args.histogram, "w") as handle:
            json.dump(report["histogram"], handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.histogram}")
    if args.check:
        with open(args.check) as handle:
            snapshot = json.load(handle)
        tolerance = (
            args.tolerance if args.tolerance is not None else DEFAULT_TOLERANCE
        )
        failures = check_load_snapshot(report, snapshot, tolerance)
        for failure in failures:
            print(f"LOADGEN REGRESSION: {failure}")
        if failures:
            return 1
        print(f"loadgen check against {args.check}: ok")
    return 0


def main(argv: list[str] | None = None) -> int:
    import argparse

    from ..cli import add_loadgen_arguments

    parser = argparse.ArgumentParser(description="C2PI open-loop load harness")
    add_loadgen_arguments(parser)
    return run_from_args(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
