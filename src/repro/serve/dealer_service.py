"""The crypto-producer service: a standalone, crash-survivable dealer.

C2PI's cost structure is dominated by the offline phase — the dealer
material behind every ReLU's comparison circuit. In-process serving
(:class:`~repro.serve.remote.RemoteServer`) regenerates that material
wherever the server runs and loses it whenever the server dies. This
module extracts the dealer into its own process:

* :class:`DealerServer` — owns one compiled program (identified by its
  weight-free :func:`~repro.mpc.party.program_fingerprint`) and serves
  sealed preprocessing bundles over the wire-v2 framed transport, one
  deterministic stream per ``(batch, session_seed)``. Every bundle is
  spilled to a disk-backed :class:`~repro.mpc.pool_store.PoolStore`
  before it is served, so a ``kill -9``'d dealer restarts, replays its
  manifest, restores the stream's rng position from the last stored
  record and resumes serving — stored bundles byte-identical, future
  bundles stream-identical.
* :class:`DealerClient` — the serving process's RPC stub: fetches
  bundles by ``(fingerprint, batch, session_seed, seq)`` with
  reconnect/backoff built in (drop, corrupt, stall and dealer restarts
  are ridden out inside ``fetch``), surfacing typed
  :class:`DealerBusy` / :class:`DealerUnreachable` only once the
  deadline is spent.
* :class:`DealerBackedPool` — a :class:`~repro.mpc.preprocessing.
  PreprocessingPool` whose refill fetches from the dealer instead of
  generating. Each fetched record carries the dealer's rng state, which
  the pool mirrors into its *local* dealer — so when the remote dealer
  is unreachable and ``fallback`` is enabled, inline generation resumes
  at exactly the remote stream's position and the served logits stay
  byte-identical. Fallbacks, remote fetches and RPC retries are
  accounted in :class:`~repro.mpc.preprocessing.PoolStats`.

Request idempotency is structural: a bundle, once generated, is stored
and re-served verbatim for any later request of the same ``seq`` —
a retried RPC (or a serving process that restarts mid-stream) can never
split one stream position across two different bundles.

Trust topology: the dealer is the same third party the in-process
:class:`~repro.mpc.dealer.TrustedDealer` already models (it learns the
weights like a Delphi server, never a client input). The default RPC
mode ships both party halves plus the rng state to the *serving*
process — exactly the joint view the server holds today, since the
server has always run the dealer locally. The ``party=0/1`` request
mode serves a single half (without the rng state, which would reveal
the whole stream) for the stricter topology where each party fetches
its own half directly; the tests pin that a directly-fetched half is
byte-identical to the server-forwarded one.

``python -m repro.serve.dealer_service --listen H:P --store DIR ...``
(or ``c2pi dealer``) runs the process standalone.
"""

from __future__ import annotations

import json
import socket
import struct
import threading
import time

from ..mpc.dealer import TrustedDealer
from ..mpc.party import program_fingerprint
from ..mpc.pool_store import PoolStore
from ..mpc.preprocessing import (
    MaterialRequest,
    PreprocessingPool,
    join_party_bundle,
    material_plan,
    pack_party_bundle,
    split_bundle,
    unpack_party_bundle,
)
from ..mpc.program import SecureProgram
from ..mpc.transport import PeerChannel, Transport, TransportError

__all__ = [
    "DEALER_PROTOCOL",
    "DealerBusy",
    "DealerUnreachable",
    "DealerError",
    "DealerServer",
    "DealerClient",
    "DealerBackedPool",
    "stream_key",
    "main",
]

DEALER_PROTOCOL = 1

# One stored/shipped record: both party halves plus the dealer rng state
# *after* generating the bundle. len0/len1/len_state header, then the
# three byte strings. Party-split replies blank the fields the requesting
# party must not see (state pins the whole stream — joint-mode only).
_RECORD_HEADER = struct.Struct("!III")


class DealerBusy(RuntimeError):
    """Typed, retriable refusal: the dealer is at its admission limit
    (or was asked for an unstored bundle in ``generate=False`` mode)."""


class DealerUnreachable(RuntimeError):
    """The dealer RPC gave up: no healthy connection within the deadline."""


class DealerError(RuntimeError):
    """A non-retriable dealer refusal (mismatched program, bad request)."""


def stream_key(fingerprint: str, batch: int, session_seed: int) -> str:
    """The store key of one deterministic material stream."""
    return f"{fingerprint}:{batch}:{session_seed}"


def _pack_record(blob0: bytes, blob1: bytes, state: bytes) -> bytes:
    return (
        _RECORD_HEADER.pack(len(blob0), len(blob1), len(state))
        + blob0
        + blob1
        + state
    )


def _unpack_record(record: bytes) -> tuple[bytes, bytes, bytes]:
    len0, len1, len_state = _RECORD_HEADER.unpack_from(record)
    offset = _RECORD_HEADER.size
    if len(record) != offset + len0 + len1 + len_state:
        raise DealerError("malformed dealer record: length mismatch")
    blob0 = record[offset : offset + len0]
    blob1 = record[offset + len0 : offset + len0 + len1]
    state = record[offset + len0 + len1 :]
    return blob0, blob1, state


def _seal_reply(record: bytes, party: int | None) -> bytes:
    """The wire form of a stored record for one requester.

    ``party=None`` (the server-forwarded topology) ships the record
    verbatim — which is what makes a re-served bundle byte-identical
    across dealer restarts. A single-party request gets only its own
    sealed half, and never the rng state: the state determines every
    party's future material, so it travels joint-mode only.
    """
    if party is None:
        return record
    blob0, blob1, _state = _unpack_record(record)
    if party == 0:
        return _pack_record(blob0, b"", b"")
    return _pack_record(b"", blob1, b"")


class _Stream:
    """One ``(batch, session_seed)`` material stream on the dealer."""

    def __init__(self, key: str, session_seed: int):
        self.key = key
        self.dealer = TrustedDealer(seed=session_seed)
        self.next_seq = 0
        # Held across dealer generation + the store spill: the rng
        # stream's strict ordering is the byte-identity contract.
        self.generation_lock = threading.Lock()
        # In-memory retention when no store is attached (idempotent
        # re-serves still work; durability obviously does not).
        self.cache: dict[int, bytes] = {}


class _Busy(Exception):
    """Internal: carries the busy reason to the reply encoder."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


class DealerServer:
    """Serves sealed preprocessing bundles for one compiled program.

    Parameters
    ----------
    program:
        The compiled crypto segment; its fingerprint gates every client.
    store:
        Optional :class:`PoolStore` spilling every generated bundle to
        disk before it is served (the durability tentpole). Without one
        the dealer retains bundles in memory only.
    max_active_generations:
        Admission limit: how many bundle *generations* may run at once.
        Requests beyond it get a retriable busy reply instead of a
        convoy; serves from the store are never throttled.
    generate:
        ``False`` turns the dealer into a pure cache: unstored seqs get
        a retriable ``pool-exhausted`` busy reply (the strict mode the
        exhaustion tests use).
    """

    def __init__(
        self,
        program: SecureProgram,
        *,
        store: PoolStore | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_active_generations: int = 2,
        generate: bool = True,
        timeout: float = 120.0,
    ):
        if max_active_generations < 1:
            raise ValueError("max_active_generations must be positive")
        self.program = program
        self.fingerprint = program_fingerprint(program)
        self.store = store
        self.generate = generate
        self.host = host
        self.timeout = timeout
        self._listener = PeerChannel.listen(host, port)
        self.port = self._listener.getsockname()[1]
        self._stopping = False
        self._accept_thread: threading.Thread | None = None
        self._admission = threading.BoundedSemaphore(max_active_generations)
        self._streams: dict[tuple[int, int], _Stream] = {}
        self._traces: dict[int, list[MaterialRequest]] = {}
        self._state_lock = threading.Lock()
        self.connections = 0
        self.requests = 0
        self.bundles_generated = 0
        self.served_from_store = 0
        self.busy_rejections = 0

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Accept connections on a background thread (in-process use)."""
        self._accept_thread = threading.Thread(
            target=self.serve_forever, name="c2pi-dealer-accept", daemon=True
        )
        self._accept_thread.start()

    def serve_forever(self) -> None:
        while not self._stopping:
            try:
                transport = PeerChannel.accept(self._listener, timeout=self.timeout)
            except OSError:
                break  # listener closed by stop()
            threading.Thread(
                target=self._serve_connection,
                args=(transport,),
                name="c2pi-dealer-conn",
                daemon=True,
            ).start()

    def stop(self) -> None:
        self._stopping = True
        try:
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:  # pragma: no cover - platform dependent
            pass
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - platform dependent
            pass

    # ------------------------------------------------------------------
    def _stream(self, batch: int, session_seed: int) -> _Stream:
        """Get or create a stream; creation resumes from the store.

        A restarted dealer finds the stream's stored tail, restores the
        rng from the state embedded in the last record, and continues at
        ``max_seq + 1`` — zero regeneration, stream-identical output.
        """
        with self._state_lock:
            stream = self._streams.get((batch, session_seed))
            if stream is not None:
                return stream
            key = stream_key(self.fingerprint, batch, session_seed)
            stream = _Stream(key, session_seed)
            if self.store is not None:
                last = self.store.max_seq(key)
                if last is not None:
                    record = self.store.get(key, last)
                    _blob0, _blob1, state = _unpack_record(record)
                    stream.dealer.restore_state(
                        json.loads(state.decode("utf-8"))
                    )
                    stream.next_seq = last + 1
            self._streams[(batch, session_seed)] = stream
            return stream

    def _trace(self, batch: int) -> list[MaterialRequest]:
        with self._state_lock:
            trace = self._traces.get(batch)
            if trace is None:
                trace = material_plan(self.program, batch)
                self._traces[batch] = trace
            return trace

    def _stored(self, stream: _Stream, seq: int) -> bytes | None:
        if self.store is not None:
            return self.store.get(stream.key, seq)
        return stream.cache.get(seq)

    def _generate_bundle(self, stream: _Stream, trace) -> bytes:
        """One generation step at ``stream.next_seq``; returns the record.

        Callers hold ``stream.generation_lock``: the dealer rng must
        advance in strict seq order, and the spill must land before the
        record is served (store-then-serve is the idempotency argument).
        """
        dealer = stream.dealer
        bundle = []
        for request in trace:
            if request.method == "linear_correlation":
                material = dealer.linear_correlation(request.shape, request.ring_fn)
            else:
                material = getattr(dealer, request.method)(request.shape)
            bundle.append((request, material))
        record = _pack_record(
            pack_party_bundle(split_bundle(bundle, 0)),
            pack_party_bundle(split_bundle(bundle, 1)),
            json.dumps(dealer.state()).encode("utf-8"),
        )
        if self.store is not None:
            self.store.put(stream.key, stream.next_seq, record)
        else:
            stream.cache[stream.next_seq] = record
        stream.next_seq += 1
        with self._state_lock:
            self.bundles_generated += 1
        return record

    def _record_for(
        self, batch: int, session_seed: int, seq: int
    ) -> tuple[bytes, str]:
        """The sealed record for one stream position (store or generate)."""
        stream = self._stream(batch, session_seed)
        record = self._stored(stream, seq)
        if record is not None:
            with self._state_lock:
                self.served_from_store += 1
            return record, "store"
        if not self.generate:
            raise _Busy("pool-exhausted")
        if not self._admission.acquire(blocking=False):
            with self._state_lock:
                self.busy_rejections += 1
            raise _Busy("dealer-busy")
        try:
            trace = self._trace(batch)
            with stream.generation_lock:
                # A racing request may have generated it while we queued.
                record = self._stored(stream, seq)
                if record is not None:
                    with self._state_lock:
                        self.served_from_store += 1
                    return record, "store"
                if seq < stream.next_seq:
                    # Stored history was lost (no store / torn record)
                    # and the rng has moved past: regenerating would fork
                    # the stream. Refuse rather than lie.
                    # The stream key embeds the session seed — name only
                    # the public positions here.
                    raise DealerError(
                        f"bundle {seq} predates the dealer's position "
                        f"{stream.next_seq} and is not stored — cannot "
                        "regenerate without forking the material stream"
                    )
                while stream.next_seq <= seq:
                    record = self._generate_bundle(stream, trace)
        finally:
            self._admission.release()
        return record, "generated"

    # ------------------------------------------------------------------
    def _serve_connection(self, transport: Transport) -> None:
        with self._state_lock:
            self.connections += 1
        try:
            link = transport.recv_obj("dealer-link")
            reason = None
            if link.get("protocol") != DEALER_PROTOCOL:
                reason = "protocol-mismatch"
            elif link.get("fingerprint") not in (None, self.fingerprint):
                reason = "fingerprint-mismatch"
            hello = {
                "protocol": DEALER_PROTOCOL,
                "ok": reason is None,
                "fingerprint": self.fingerprint,
                "bundles_recovered": (
                    self.store.stats.bundles_recovered if self.store else 0
                ),
            }
            if reason is not None:
                hello["reason"] = reason
            transport.send_obj(hello, "dealer-hello")
            if reason is not None:
                return
            while True:
                request = transport.recv_obj("dealer-req")
                if not self._dispatch(transport, request):
                    break
        except (TransportError, OSError, ValueError, KeyError, TypeError):
            # A hostile or vanished client costs its own connection only.
            pass
        finally:
            transport.close()

    def _dispatch(self, transport: Transport, request: dict) -> bool:
        command = request.get("cmd")
        if command == "bye":
            return False
        if command == "bundle":
            with self._state_lock:
                self.requests += 1
            seq = int(request["seq"])
            try:
                record, source = self._record_for(
                    int(request["batch"]), int(request["session_seed"]), seq
                )
            except _Busy as busy:
                transport.send_obj(
                    {"ok": False, "busy": True, "retriable": True,
                     "reason": busy.reason},
                    "dealer-rep",
                )
                return True
            except DealerError as exc:
                transport.send_obj(
                    {"ok": False, "busy": False, "error": str(exc)},
                    "dealer-rep",
                )
                return True
            party = request.get("party")
            transport.send_obj(
                {"ok": True, "seq": seq, "source": source}, "dealer-rep"
            )
            transport.send_blob(_seal_reply(record, party), "dealer-bundle")
            return True
        if command == "warm":
            batch = int(request["batch"])
            session_seed = int(request["session_seed"])
            count = int(request.get("count", 1))
            try:
                for seq in range(count):
                    self._record_for(batch, session_seed, seq)
            except _Busy as busy:
                transport.send_obj(
                    {"ok": False, "busy": True, "retriable": True,
                     "reason": busy.reason},
                    "dealer-rep",
                )
                return True
            except DealerError as exc:
                transport.send_obj(
                    {"ok": False, "busy": False, "error": str(exc)},
                    "dealer-rep",
                )
                return True
            transport.send_obj({"ok": True, "stored": count}, "dealer-rep")
            return True
        if command == "stats":
            transport.send_obj({"ok": True, **self.stats()}, "dealer-rep")
            return True
        transport.send_obj(
            {"ok": False, "busy": False, "error": f"unknown command {command!r}"},
            "dealer-rep",
        )
        return True

    def stats(self) -> dict:
        with self._state_lock:
            counters = {
                "connections": self.connections,
                "requests": self.requests,
                "bundles_generated": self.bundles_generated,
                "served_from_store": self.served_from_store,
                "busy_rejections": self.busy_rejections,
                "streams": len(self._streams),
            }
        counters["store"] = self.store.stats.as_dict() if self.store else None
        return counters


# ----------------------------------------------------------------------
# client stub
# ----------------------------------------------------------------------
class DealerClient:
    """RPC stub for one dealer endpoint; reconnects and backs off itself.

    ``fetch`` keeps retrying through transport faults (reconnecting) and
    busy replies (backing off) until its deadline, then surfaces
    :class:`DealerUnreachable` / :class:`DealerBusy` — so a dealer
    restart shorter than the deadline is invisible to the caller. Not
    thread-safe: each consumer (one pool) owns its own client.
    """

    def __init__(
        self,
        host: str,
        port: int,
        fingerprint: str | None = None,
        timeout: float = 5.0,
        transport_wrapper=None,
    ):
        self.host = host
        self.port = port
        self.fingerprint = fingerprint
        self.timeout = timeout
        self._wrapper = transport_wrapper
        self.transport: Transport | None = None
        self.hello: dict | None = None
        self.rpc_retries = 0

    def _connect(self) -> None:
        transport = PeerChannel.connect(
            self.host, self.port, timeout=self.timeout, attempts=1
        )
        if self._wrapper is not None:
            transport = self._wrapper(transport)
        try:
            transport.send_obj(
                {"protocol": DEALER_PROTOCOL, "fingerprint": self.fingerprint},
                "dealer-link",
            )
            hello = transport.recv_obj("dealer-hello")
        except (TransportError, OSError):
            transport.close()
            raise
        if not hello.get("ok"):
            transport.close()
            raise DealerError(
                f"dealer at {self.host}:{self.port} refused the link: "
                f"{hello.get('reason')} (dealer fingerprint "
                f"{hello.get('fingerprint')!r}, ours {self.fingerprint!r})"
            )
        self.hello = hello
        self.transport = transport

    def _drop(self) -> None:
        if self.transport is not None:
            self.transport.close()
            self.transport = None

    def _rpc(self, request: dict, expect_blob: bool, deadline: float | None):
        """One request with retry/backoff; returns ``(reply, blob|None)``."""
        limit = time.monotonic() + (self.timeout if deadline is None else deadline)
        backoff = 0.05
        last: Exception | None = None
        while True:
            try:
                if self.transport is None:
                    self._connect()
                transport = self.transport
                transport.send_obj(request, "dealer-req")
                reply = transport.recv_obj("dealer-rep")
                if reply.get("ok"):
                    blob = (
                        transport.recv_blob("dealer-bundle")
                        if expect_blob
                        else None
                    )
                    return reply, blob
                if reply.get("busy"):
                    raise DealerBusy(reply.get("reason", "dealer-busy"))
                # The request dict carries the session seed on some
                # commands — interpolate only the server's reply, which
                # is public by construction.
                raise DealerError(
                    f"dealer refused the request: {reply.get('error', reply)}"
                )
            except DealerBusy as exc:
                last = exc
                if time.monotonic() >= limit:
                    raise
            except (TransportError, OSError) as exc:
                last = exc
                self._drop()
                if time.monotonic() >= limit:
                    raise DealerUnreachable(
                        f"dealer at {self.host}:{self.port} unreachable "
                        f"within the deadline: {last}"
                    ) from exc
            self.rpc_retries += 1
            time.sleep(backoff)
            backoff = min(backoff * 2.0, 0.5)

    # ------------------------------------------------------------------
    def fetch(
        self,
        batch: int,
        session_seed: int,
        seq: int,
        party: int | None = None,
        deadline: float | None = None,
    ) -> bytes:
        """The sealed record for one stream position (see module doc)."""
        request = {
            "cmd": "bundle",
            "batch": batch,
            "session_seed": session_seed,
            "seq": seq,
            "party": party,
        }
        _reply, blob = self._rpc(request, expect_blob=True, deadline=deadline)
        return blob

    def warm(
        self,
        batch: int,
        session_seed: int,
        count: int = 1,
        deadline: float | None = None,
    ) -> None:
        """Ask the dealer to pre-generate (and store) ``count`` bundles."""
        self._rpc(
            {"cmd": "warm", "batch": batch, "session_seed": session_seed,
             "count": count},
            expect_blob=False,
            deadline=deadline,
        )

    def stats(self, deadline: float | None = None) -> dict:
        reply, _ = self._rpc({"cmd": "stats"}, expect_blob=False, deadline=deadline)
        return reply

    def close(self) -> None:
        if self.transport is not None:
            try:
                self.transport.send_obj({"cmd": "bye"}, "dealer-req")
            except (TransportError, OSError):  # pragma: no cover - gone
                pass
        self._drop()


# ----------------------------------------------------------------------
# the dealer-backed pool
# ----------------------------------------------------------------------
class DealerBackedPool(PreprocessingPool):
    """A preprocessing pool whose refill fetches from the crypto producer.

    Drop-in for :class:`PreprocessingPool` on the serving side: same
    locks, same acquire/restore/poison books, same per-session seeding.
    A refill asks the dealer for the stream's next record and rejoins
    the party halves; the embedded rng state is mirrored into the local
    dealer after every fetch, so inline **fallback** generation (dealer
    down or busy, ``fallback=True``) continues the stream byte-for-byte
    where the remote left off. With ``fallback=False`` the typed
    :class:`DealerBusy` / :class:`DealerUnreachable` propagates out of
    ``acquire()`` for the serving layer to convert into a retriable
    busy reply.
    """

    def __init__(
        self,
        program: SecureProgram,
        batch: int,
        dealer_seed: int = 0,
        auto_refill: bool = True,
        *,
        client: DealerClient,
        fallback: bool = True,
        fetch_deadline: float = 5.0,
    ):
        super().__init__(
            program, batch, dealer_seed=dealer_seed, auto_refill=auto_refill
        )
        self._client = client
        self._session_seed = dealer_seed
        self._fallback = fallback
        self._fetch_deadline = fetch_deadline
        self._next_seq = 0
        self._retries_seen = 0

    def refill(self, bundles: int = 1) -> None:
        """Fetch (or fall back to generating) ``bundles`` fresh bundles."""
        self._raise_deferred_failure()
        trace = self.requirements()
        for _ in range(bundles):
            with self._generation_lock:
                start = time.perf_counter()
                bundle, fetched = self._next_bundle(trace)
                elapsed = time.perf_counter() - start
            with self._lock:
                self._bundles.append(bundle)
                self.stats.bundles_generated += 1
                self.stats.material_items += len(bundle)
                self.stats.offline_seconds += elapsed
                if fetched:
                    self.stats.bundles_fetched_remote += 1
                else:
                    self.stats.dealer_fallbacks += 1
                retries = self._client.rpc_retries
                self.stats.dealer_rpc_retries += retries - self._retries_seen
                self._retries_seen = retries
                self._refill_done.notify_all()
        with self._lock:
            self.stats.refills += 1

    def _next_bundle(self, trace) -> tuple[list, bool]:
        """One stream step: remote fetch, or state-synced inline fallback.

        Callers hold ``_generation_lock`` (stream order is the
        determinism contract, exactly as in the base pool).
        """
        seq = self._next_seq
        try:
            record = self._client.fetch(
                self.batch, self._session_seed, seq,
                deadline=self._fetch_deadline,
            )
        except DealerError:
            raise  # a refusal is a configuration bug, never degraded mode
        except (DealerBusy, DealerUnreachable, TransportError, OSError):
            if not self._fallback:
                raise
            bundle = self._generate(trace)
            self._next_seq = seq + 1
            return bundle, False
        blob0, blob1, state = _unpack_record(record)
        bundle = join_party_bundle(
            unpack_party_bundle(blob0), unpack_party_bundle(blob1)
        )
        if state:
            # Mirror the remote stream position: a later inline fallback
            # must continue exactly where the dealer's rng stands.
            self._dealer.restore_state(json.loads(state.decode("utf-8")))
        self._next_seq = seq + 1
        return bundle, True

    def close(self) -> None:
        self._client.close()


# ----------------------------------------------------------------------
# standalone process entry point
# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="c2pi dealer",
        description="Standalone crypto-producer: serves preprocessing "
        "bundles over the framed transport, spilling every bundle to a "
        "disk-backed store so a killed dealer restarts where it left off.",
    )
    parser.add_argument(
        "--listen", default="127.0.0.1:0", metavar="HOST:PORT",
        help="bind address (port 0 picks an ephemeral port)",
    )
    parser.add_argument(
        "--store", default=None, metavar="DIR",
        help="PoolStore directory (omit for in-memory retention only)",
    )
    parser.add_argument(
        "--arch", default="resnet20",
        choices=("alexnet", "vgg16", "vgg19", "resnet20"),
        help="untrained victim architecture (must match the server's)",
    )
    parser.add_argument(
        "--untrained-width", type=float, default=0.25, metavar="MULT",
        help="width multiplier of the untrained victim",
    )
    parser.add_argument(
        "--model-seed", type=int, default=0,
        help="weight seed of the untrained victim",
    )
    parser.add_argument(
        "--tiny", type=int, default=None, metavar="SEED",
        help="serve the tiny chaos-check victim with this weight seed "
        "(test/CI mode; overrides --arch)",
    )
    parser.add_argument(
        "--boundary", type=float, default=2.5,
        help="crypto/clear boundary depth of the compiled program",
    )
    parser.add_argument(
        "--generation-slots", type=int, default=2, metavar="N",
        help="admission limit: concurrent bundle generations",
    )
    args = parser.parse_args(argv)

    from ..mpc.fixedpoint import DEFAULT_CONFIG
    from ..mpc.program import compile_program

    if args.tiny is not None:
        from .chaos_check import tiny_victim

        model = tiny_victim(args.tiny)
    else:
        from .remote import _demo_victim

        model = _demo_victim(args.arch, args.untrained_width, args.model_seed)
    program = compile_program(model, args.boundary, DEFAULT_CONFIG)

    host, _, port_text = args.listen.partition(":")
    store = PoolStore(args.store) if args.store else None
    server = DealerServer(
        program,
        store=store,
        host=host or "127.0.0.1",
        port=int(port_text or 0),
        max_active_generations=args.generation_slots,
    )
    # The launcher (tests, CI, an operator) reads the bound endpoint from
    # stdout; no protocol value is in scope here.
    # audit: allow[secrecy/print-in-protocol] -- startup banner only
    print(f"dealer listening on {server.host}:{server.port}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive use
        pass
    finally:
        server.stop()
        if store is not None:
            store.close()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
