"""Batched C2PI serving: compile once, preprocess offline, serve many.

:class:`C2PIServer` is the deployment-shaped front-end over
:class:`~repro.core.c2pi.C2PIPipeline`:

* the crypto segment is compiled into a
  :class:`~repro.mpc.program.SecureProgram` **once**, at startup;
* per-batch :class:`~repro.mpc.preprocessing.PreprocessingPool`\\ s are
  kept warm (and can be refilled in the background between requests), so
  the request path is online-phase work only;
* queued requests are **coalesced** into batched secure executions —
  a batch of b images costs one protocol round trip per layer instead of
  b, which is where the serving throughput comes from;
* queued requests from **different named sessions fuse** into one engine
  pass too: each session keeps its own derived dealer seed, share rng and
  noise stream (see :func:`~repro.serve.remote.derive_session_seed`), its
  batch-1 bundles are concatenated along the batch axis
  (:func:`~repro.mpc.preprocessing.fuse_bundles`) and the input sharing
  is injected per row, so every fused row is byte-identical to the same
  session running alone on its own pipeline;
* every reply carries its own latency, and the server aggregates
  throughput, online/offline wall-clock and the per-label traffic
  breakdown of :class:`~repro.mpc.network.Channel`.

:func:`benchmark_serving` measures the batched warm-pool path against the
seed behaviour (one request at a time, correlated randomness generated
inline) and is what ``c2pi serve-bench`` reports.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from .. import nn
from ..core.c2pi import C2PIPipeline
from ..core.noise import NoiseMechanism
from ..models.layered import LayeredModel
from ..mpc.fixedpoint import DEFAULT_CONFIG, FixedPointConfig
from ..mpc.preprocessing import (
    PreprocessingPool,
    ReplayDealer,
    fuse_bundles,
    material_plan,
)
from ..mpc.sharing import share_additive
from .remote import derive_session_seed

__all__ = [
    "InferenceRequest",
    "InferenceReply",
    "ServerMetrics",
    "C2PIServer",
    "benchmark_serving",
]


@dataclass
class InferenceRequest:
    """One queued client request (a single CHW image).

    ``session`` is the fusion key: ``None`` (anonymous) requests ride the
    historical single-engine coalescing path, while named requests fuse
    with other named requests under per-session crypto streams.
    """

    request_id: int
    image: np.ndarray
    enqueued_s: float
    session: int | str | None = None


@dataclass
class _SessionLane:
    """One named session's private crypto streams inside the fusion path.

    Seeded exactly like a standalone
    :class:`~repro.core.c2pi.C2PIPipeline` built with this session's
    derived seed: batch-1 pool dealer at ``seed``, share rng at
    ``seed + 1``, noise at ``seed`` — the byte-identity anchor the
    fusion tests pin.
    """

    seed: int
    share_rng: np.random.Generator
    noise: NoiseMechanism
    pool: PreprocessingPool


@dataclass
class InferenceReply:
    """The served outcome for one request."""

    request_id: int
    logits: np.ndarray
    prediction: int
    online_s: float  # secure online phase of the batch this rode in
    queued_s: float  # time spent waiting for coalescing (queue wait only)
    batch_size: int
    used_pool: bool
    offline_miss_s: float = 0.0  # cold-pool offline generation this batch paid


@dataclass
class ServerMetrics:
    """Aggregate serving counters (see :meth:`C2PIServer.metrics`)."""

    requests: int = 0
    batches: int = 0
    fused_batches: int = 0  # batches served on the cross-session path
    fused_requests: int = 0  # named-session rows those batches carried
    online_s: float = 0.0
    online_bytes: int = 0
    online_rounds: int = 0
    miss_offline_s: float = 0.0  # offline work forced onto the request path
    traffic_by_label: dict[str, dict] = field(default_factory=dict)

    def record_labels(self, breakdown) -> None:
        for label, snapshot in breakdown.items():
            bucket = self.traffic_by_label.setdefault(
                label, {"bytes": 0, "messages": 0, "rounds": 0}
            )
            bucket["bytes"] += snapshot.total_bytes
            bucket["messages"] += snapshot.messages
            bucket["rounds"] += snapshot.rounds

    @property
    def amortized_online_s(self) -> float:
        return self.online_s / self.requests if self.requests else 0.0


class C2PIServer:
    """Serve private inferences from warm preprocessing pools.

    Parameters
    ----------
    model, boundary, noise_magnitude, config, seed:
        Forwarded to the underlying :class:`C2PIPipeline` (one compiled
        program, one engine).
    max_batch:
        Coalescing width: :meth:`step` packs up to this many queued
        requests into one secure execution.
    warm_bundles:
        Preprocessing bundles generated for full ``max_batch`` batches at
        startup. Pools for other (remainder) batch sizes are created on
        demand and refill on miss.
    """

    def __init__(
        self,
        model: LayeredModel,
        boundary: float,
        noise_magnitude: float = 0.1,
        config: FixedPointConfig = DEFAULT_CONFIG,
        seed: int = 0,
        max_batch: int = 4,
        warm_bundles: int = 1,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        self.pipeline = C2PIPipeline(
            model, boundary, noise_magnitude=noise_magnitude, config=config, seed=seed
        )
        self.seed = seed
        self.max_batch = max_batch
        self.metrics = ServerMetrics()
        self._queue: deque[InferenceRequest] = deque()
        # Named-session fusion lanes, created on first submit for a key.
        # Only step() touches them — the secure execution is single-engine,
        # so steps are serialized by construction.
        self._lanes: dict[int | str, _SessionLane] = {}
        self._next_id = 0
        # Concurrent submitters (e.g. a request thread feeding a serving
        # loop) only contend on the queue and the counters; the secure
        # execution itself stays single-engine.
        self._queue_lock = threading.Lock()
        if warm_bundles:
            self.warm(warm_bundles)

    @property
    def program(self):
        return self.pipeline.program

    # ------------------------------------------------------------------
    def warm(self, bundles: int = 1, batch: int | None = None, background: bool = False):
        """Offline phase: pool ``bundles`` bundles for ``batch``-sized runs."""
        return self.pipeline.prepare_offline(
            batch=batch or self.max_batch, bundles=bundles, background=background
        )

    def submit(self, image: np.ndarray, session: int | str | None = None) -> int:
        """Queue one image (CHW) for inference; returns the request id.

        A ``session`` key routes the request onto the cross-session
        fusion path: its crypto streams derive from
        ``derive_session_seed(self.seed, session)``, independent of every
        other session and of the anonymous engine. Anonymous requests
        (``session=None``) keep the historical byte-exact behaviour.
        """
        image = np.asarray(image, dtype=np.float32)
        if image.ndim == 4 and image.shape[0] == 1:
            image = image[0]
        if image.shape != self.program.input_shape:
            raise ValueError(
                f"expected image of shape {self.program.input_shape}, got {image.shape}"
            )
        with self._queue_lock:
            request = InferenceRequest(
                request_id=self._next_id,
                image=image,
                enqueued_s=time.perf_counter(),
                session=session,
            )
            self._next_id += 1
            self._queue.append(request)
        return request.request_id

    @property
    def pending(self) -> int:
        with self._queue_lock:
            return len(self._queue)

    # ------------------------------------------------------------------
    def step(self) -> list[InferenceReply]:
        """Coalesce up to ``max_batch`` queued requests into one secure run.

        Requests fuse with their own kind, in FIFO order: the longest
        anonymous prefix runs on the single-engine path, the longest
        named prefix (any mix of session keys) runs as one fused pass
        with per-session crypto streams.
        """
        with self._queue_lock:
            if not self._queue:
                return []
            named = self._queue[0].session is not None
            take = 0
            for request in self._queue:
                if take >= self.max_batch or (request.session is not None) != named:
                    break
                take += 1
            requests = [self._queue.popleft() for _ in range(take)]
        if named:
            return self._step_fused(requests)
        images = np.stack([r.image for r in requests])
        # Queue wait ends here: whatever follows (pool creation, a
        # cold-pool miss generating a bundle inside infer) is offline
        # work, reported separately rather than inflating queued_s.
        dequeued = time.perf_counter()
        pool = self.pipeline.prepare_offline(batch=take, bundles=0)
        misses_before = pool.stats.misses
        offline_before = pool.stats.offline_seconds

        try:
            result = self.pipeline.infer(images)
        except Exception:
            # A failed secure execution must not swallow the requests it
            # coalesced: put them back at the queue front (in order) so
            # the next step() retries them, and let the caller see the
            # failure.
            with self._queue_lock:
                self._queue.extendleft(reversed(requests))
            raise
        missed = pool.stats.misses > misses_before
        offline_miss_s = (
            pool.stats.offline_seconds - offline_before if missed else 0.0
        )

        self.metrics.requests += take
        self.metrics.batches += 1
        self.metrics.online_s += result.online_s
        self.metrics.online_bytes += result.total_bytes
        self.metrics.online_rounds += result.crypto_rounds + 1
        self.metrics.miss_offline_s += offline_miss_s
        self.metrics.record_labels(result.traffic_by_label)

        return [
            InferenceReply(
                request_id=request.request_id,
                logits=result.logits[i],
                prediction=int(result.logits[i].argmax()),
                online_s=result.online_s,
                queued_s=dequeued - request.enqueued_s,
                batch_size=take,
                used_pool=result.used_pool,
                offline_miss_s=offline_miss_s,
            )
            for i, request in enumerate(requests)
        ]

    # ------------------------------------------------------------------
    def _lane(self, session: int | str) -> _SessionLane:
        """This session's fusion lane, created on first use."""
        lane = self._lanes.get(session)
        if lane is None:
            seed = derive_session_seed(self.seed, session)
            lane = _SessionLane(
                seed=seed,
                share_rng=np.random.default_rng(seed + 1),
                noise=NoiseMechanism(self.pipeline.noise.magnitude, seed=seed),
                pool=PreprocessingPool(self.program, 1, dealer_seed=seed),
            )
            self._lanes[session] = lane
        return lane

    def warm_sessions(self, sessions, bundles: int = 1) -> None:
        """Offline phase for named sessions: pre-pool batch-1 bundles."""
        for session in sessions:
            self._lane(session).pool.refill(bundles)

    def _step_fused(self, requests: list[InferenceRequest]) -> list[InferenceReply]:
        """One engine pass over ``k`` named-session rows, streams kept private.

        Row ``i`` consumes exactly what a standalone run of its session
        would have: the next batch-1 bundle of its derived-seed pool, the
        next draw of its share rng, the next draw of its noise rng. The
        bundles are concatenated along the batch axis and the input
        sharing injected, so the engine's own rng does not move and the
        fused logits are byte-identical per row to the serial runs.
        """
        dequeued = time.perf_counter()
        config = self.pipeline.config
        lanes = [self._lane(request.session) for request in requests]
        # Failure containment mirrors the anonymous path's re-queue, plus
        # stream rewind: a failed pass must leave every session's rng and
        # pool exactly where a fault-free future retry expects them.
        rng_states: dict[int | str, tuple] = {}
        miss_base: dict[int | str, tuple] = {}
        for request, lane in zip(requests, lanes):
            if request.session not in rng_states:
                rng_states[request.session] = (
                    lane.share_rng.bit_generator.state,
                    lane.noise.rng.bit_generator.state,
                )
                miss_base[request.session] = (
                    lane.pool.stats.misses,
                    lane.pool.stats.offline_seconds,
                )
        acquired: list[tuple[_SessionLane, list]] = []
        try:
            bundles = []
            for lane in lanes:
                bundle = lane.pool.acquire_bundle()
                acquired.append((lane, bundle))
                bundles.append(bundle)
            row_shares = [
                share_additive(config.encode(request.image[None]), lane.share_rng)
                for request, lane in zip(requests, lanes)
            ]
            input_shares = (
                np.concatenate([shares[0] for shares in row_shares]),
                np.concatenate([shares[1] for shares in row_shares]),
            )
            images = np.stack([request.image for request in requests])
            fused = fuse_bundles(bundles, material_plan(self.program, len(requests)))
            start = time.perf_counter()
            execution = self.pipeline.engine.run(
                images, material=ReplayDealer(fused), input_shares=input_shares
            )
            # The noised reveal, row by row from each session's own stream.
            client_share = np.concatenate(
                [
                    lane.noise.perturb_share(
                        execution.shares[0][i : i + 1], config
                    )
                    for i, lane in enumerate(lanes)
                ]
            )
            reveal_bytes = client_share.nbytes
            execution.channel.send(0, reveal_bytes, label="noised-reveal")
            execution.channel.tick_round("noised-reveal")
            boundary_ring = (client_share + execution.shares[1]).astype(np.uint64)
            server_view = config.decode(boundary_ring)
            # The clear tail runs per row on purpose: batched float BLAS
            # uses different summation orders than batch-1 calls, and the
            # byte-identity contract is against each session's standalone
            # (batch-1) run. The crypto segment above is exactly
            # row-separable in the ring; only the float layers are not.
            with nn.no_grad():
                logits = np.concatenate(
                    [
                        self.pipeline.model.forward_from(
                            nn.Tensor(server_view[i : i + 1]),
                            self.pipeline.boundary,
                        ).data
                        for i in range(len(requests))
                    ]
                )
            online_s = time.perf_counter() - start
        except Exception:
            # Rewind: bundles back to their pools' fronts (reverse
            # acquisition order restores each pool's original ordering),
            # rng streams back to their pre-pass states, requests back to
            # the queue front.
            for lane, bundle in reversed(acquired):
                lane.pool.restore(bundle)
            for request, lane in zip(requests, lanes):
                if request.session in rng_states:
                    share_state, noise_state = rng_states.pop(request.session)
                    lane.share_rng.bit_generator.state = share_state
                    lane.noise.rng.bit_generator.state = noise_state
            with self._queue_lock:
                self._queue.extendleft(reversed(requests))
            raise

        offline_miss_s = 0.0
        for session, (misses, offline_s) in miss_base.items():
            pool = self._lanes[session].pool
            if pool.stats.misses > misses:
                offline_miss_s += pool.stats.offline_seconds - offline_s

        take = len(requests)
        self.metrics.requests += take
        self.metrics.batches += 1
        self.metrics.fused_batches += 1
        self.metrics.fused_requests += take
        self.metrics.online_s += online_s
        self.metrics.online_bytes += execution.channel.total_bytes
        self.metrics.online_rounds += execution.channel.rounds
        self.metrics.miss_offline_s += offline_miss_s
        self.metrics.record_labels(execution.channel.label_breakdown())

        return [
            InferenceReply(
                request_id=request.request_id,
                logits=logits[i],
                prediction=int(logits[i].argmax()),
                online_s=online_s,
                queued_s=dequeued - request.enqueued_s,
                batch_size=take,
                used_pool=True,
                offline_miss_s=offline_miss_s,
            )
            for i, request in enumerate(requests)
        ]

    def drain(self) -> list[InferenceReply]:
        """Serve everything queued; returns replies in completion order."""
        replies: list[InferenceReply] = []
        while self.pending:
            replies.extend(self.step())
        return replies

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-able metrics: request/batch counters, offline/online split,
        dealer counters and the per-label traffic breakdown."""
        pools = self.pipeline.pool_stats()
        offline_s = sum(stats["offline_seconds"] for stats in pools.values())
        dealer = self.pipeline.engine.dealer
        return {
            "requests": self.metrics.requests,
            "batches": self.metrics.batches,
            "fused_batches": self.metrics.fused_batches,
            "fused_requests": self.metrics.fused_requests,
            "max_batch": self.max_batch,
            "online_s": self.metrics.online_s,
            "amortized_online_s": self.metrics.amortized_online_s,
            "throughput_rps": (
                self.metrics.requests / self.metrics.online_s
                if self.metrics.online_s
                else 0.0
            ),
            "online_bytes": self.metrics.online_bytes,
            "online_rounds": self.metrics.online_rounds,
            "offline_s": offline_s,
            "miss_offline_s": self.metrics.miss_offline_s,
            "pools": pools,
            "session_pools": {
                str(session): lane.pool.stats.as_dict()
                for session, lane in self._lanes.items()
            },
            "online_dealer_generation": {
                "triples": dealer.triples_issued,
                "bit_triples": dealer.bit_triples_issued,
                "dabits": dealer.dabits_issued,
                "comparison_masks": dealer.comparison_masks_issued,
            },
            "traffic_by_label": self.metrics.traffic_by_label,
        }


# ----------------------------------------------------------------------
def benchmark_serving(
    model: LayeredModel,
    boundary: float,
    images: np.ndarray,
    max_batch: int = 4,
    noise_magnitude: float = 0.1,
    seed: int = 0,
    networked: bool = False,
    networks: tuple = (),
    clients: int = 0,
    clients_network=None,
) -> dict:
    """Measure batched warm-pool serving against the seed behaviour.

    The *baseline* is what the engine did before the offline/online split:
    one request at a time, with the dealer generating every piece of
    correlated randomness inline during ``run()``. The *served* path
    compiles once, pre-generates pools sized for the workload, then
    coalesces the same requests into ``max_batch``-sized secure runs.
    Returns a JSON-able comparison dict.

    With ``networked=True`` the same workload is additionally served over
    a real loopback socket (:func:`repro.serve.remote.benchmark_networked`)
    and, for each :class:`~repro.mpc.network.NetworkModel` in
    ``networks``, under token-bucket LAN/WAN shaping — reporting measured
    wall-clock next to the cost model's prediction for the same run.

    With ``clients > 0`` the networked report additionally carries a
    ``concurrent`` section (:func:`repro.serve.remote.benchmark_concurrent`):
    ``clients`` sessions served at once by one multi-worker
    :class:`~repro.serve.remote.RemoteServer` over ``clients_network``-shaped
    connections, with throughput scaling vs the serialised run of the same
    sessions and byte-identical per-session logits pinned.
    """
    images = np.asarray(images, dtype=np.float32)
    n = images.shape[0]
    if n == 0:
        raise ValueError("benchmark needs at least one image")

    # --- baseline: per-request pipeline with inline dealer generation.
    baseline = C2PIPipeline(model, boundary, noise_magnitude=noise_magnitude, seed=seed)
    start = time.perf_counter()
    baseline_results = [baseline.infer(images[i : i + 1]) for i in range(n)]
    baseline_s = time.perf_counter() - start

    # --- served: compile once, preprocess offline, coalesce online.
    server = C2PIServer(
        model,
        boundary,
        noise_magnitude=noise_magnitude,
        seed=seed,
        max_batch=max_batch,
        warm_bundles=0,
    )
    full_batches, remainder = divmod(n, max_batch)
    offline_start = time.perf_counter()
    if full_batches:
        server.warm(full_batches, batch=max_batch)
    if remainder:
        server.warm(1, batch=remainder)
    offline_s = time.perf_counter() - offline_start

    for i in range(n):
        server.submit(images[i])
    replies = server.drain()
    snapshot = server.snapshot()

    baseline_amortized = baseline_s / n
    served_amortized = snapshot["amortized_online_s"]
    agree = all(
        int(baseline_results[reply.request_id].prediction[0]) == reply.prediction
        for reply in replies
    )
    networked_report = None
    if networked:
        from .remote import benchmark_networked

        networked_report = benchmark_networked(
            model,
            boundary,
            images,
            max_batch=max_batch,
            noise_magnitude=noise_magnitude,
            seed=seed,
            networks=networks,
        )
        networked_report["predictions_agree_with_baseline"] = all(
            int(baseline_results[i].prediction[0]) == prediction
            for i, prediction in enumerate(networked_report["loopback"]["predictions"])
        )
        if clients:
            from .remote import benchmark_concurrent

            networked_report["concurrent"] = benchmark_concurrent(
                model,
                boundary,
                images,
                clients=clients,
                max_batch=max_batch,
                noise_magnitude=noise_magnitude,
                seed=seed,
                network=clients_network,
            )
    return {
        "model": model.name,
        "boundary": boundary,
        "requests": n,
        "max_batch": max_batch,
        "baseline": {
            "total_s": baseline_s,
            "amortized_s": baseline_amortized,
            "bytes": sum(r.total_bytes for r in baseline_results),
        },
        "served": {
            "online_s": snapshot["online_s"],
            "amortized_online_s": served_amortized,
            "offline_s": offline_s,
            "bytes": snapshot["online_bytes"],
            "batches": snapshot["batches"],
            "pool_misses": sum(p["misses"] for p in snapshot["pools"].values()),
            "online_dealer_generation": snapshot["online_dealer_generation"],
        },
        "speedup_online": (
            baseline_amortized / served_amortized if served_amortized else float("inf")
        ),
        "predictions_agree": agree,
        "traffic_by_label": snapshot["traffic_by_label"],
        "networked": networked_report,
    }
