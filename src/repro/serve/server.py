"""Batched C2PI serving: compile once, preprocess offline, serve many.

:class:`C2PIServer` is the deployment-shaped front-end over
:class:`~repro.core.c2pi.C2PIPipeline`:

* the crypto segment is compiled into a
  :class:`~repro.mpc.program.SecureProgram` **once**, at startup;
* per-batch :class:`~repro.mpc.preprocessing.PreprocessingPool`\\ s are
  kept warm (and can be refilled in the background between requests), so
  the request path is online-phase work only;
* queued requests are **coalesced** into batched secure executions —
  a batch of b images costs one protocol round trip per layer instead of
  b, which is where the serving throughput comes from;
* every reply carries its own latency, and the server aggregates
  throughput, online/offline wall-clock and the per-label traffic
  breakdown of :class:`~repro.mpc.network.Channel`.

:func:`benchmark_serving` measures the batched warm-pool path against the
seed behaviour (one request at a time, correlated randomness generated
inline) and is what ``c2pi serve-bench`` reports.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..core.c2pi import C2PIPipeline
from ..models.layered import LayeredModel
from ..mpc.fixedpoint import DEFAULT_CONFIG, FixedPointConfig

__all__ = [
    "InferenceRequest",
    "InferenceReply",
    "ServerMetrics",
    "C2PIServer",
    "benchmark_serving",
]


@dataclass
class InferenceRequest:
    """One queued client request (a single CHW image)."""

    request_id: int
    image: np.ndarray
    enqueued_s: float


@dataclass
class InferenceReply:
    """The served outcome for one request."""

    request_id: int
    logits: np.ndarray
    prediction: int
    online_s: float  # secure online phase of the batch this rode in
    queued_s: float  # time spent waiting for coalescing (queue wait only)
    batch_size: int
    used_pool: bool
    offline_miss_s: float = 0.0  # cold-pool offline generation this batch paid


@dataclass
class ServerMetrics:
    """Aggregate serving counters (see :meth:`C2PIServer.metrics`)."""

    requests: int = 0
    batches: int = 0
    online_s: float = 0.0
    online_bytes: int = 0
    online_rounds: int = 0
    miss_offline_s: float = 0.0  # offline work forced onto the request path
    traffic_by_label: dict[str, dict] = field(default_factory=dict)

    def record_labels(self, breakdown) -> None:
        for label, snapshot in breakdown.items():
            bucket = self.traffic_by_label.setdefault(
                label, {"bytes": 0, "messages": 0, "rounds": 0}
            )
            bucket["bytes"] += snapshot.total_bytes
            bucket["messages"] += snapshot.messages
            bucket["rounds"] += snapshot.rounds

    @property
    def amortized_online_s(self) -> float:
        return self.online_s / self.requests if self.requests else 0.0


class C2PIServer:
    """Serve private inferences from warm preprocessing pools.

    Parameters
    ----------
    model, boundary, noise_magnitude, config, seed:
        Forwarded to the underlying :class:`C2PIPipeline` (one compiled
        program, one engine).
    max_batch:
        Coalescing width: :meth:`step` packs up to this many queued
        requests into one secure execution.
    warm_bundles:
        Preprocessing bundles generated for full ``max_batch`` batches at
        startup. Pools for other (remainder) batch sizes are created on
        demand and refill on miss.
    """

    def __init__(
        self,
        model: LayeredModel,
        boundary: float,
        noise_magnitude: float = 0.1,
        config: FixedPointConfig = DEFAULT_CONFIG,
        seed: int = 0,
        max_batch: int = 4,
        warm_bundles: int = 1,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        self.pipeline = C2PIPipeline(
            model, boundary, noise_magnitude=noise_magnitude, config=config, seed=seed
        )
        self.max_batch = max_batch
        self.metrics = ServerMetrics()
        self._queue: deque[InferenceRequest] = deque()
        self._next_id = 0
        # Concurrent submitters (e.g. a request thread feeding a serving
        # loop) only contend on the queue and the counters; the secure
        # execution itself stays single-engine.
        self._queue_lock = threading.Lock()
        if warm_bundles:
            self.warm(warm_bundles)

    @property
    def program(self):
        return self.pipeline.program

    # ------------------------------------------------------------------
    def warm(self, bundles: int = 1, batch: int | None = None, background: bool = False):
        """Offline phase: pool ``bundles`` bundles for ``batch``-sized runs."""
        return self.pipeline.prepare_offline(
            batch=batch or self.max_batch, bundles=bundles, background=background
        )

    def submit(self, image: np.ndarray) -> int:
        """Queue one image (CHW) for inference; returns the request id."""
        image = np.asarray(image, dtype=np.float32)
        if image.ndim == 4 and image.shape[0] == 1:
            image = image[0]
        if image.shape != self.program.input_shape:
            raise ValueError(
                f"expected image of shape {self.program.input_shape}, got {image.shape}"
            )
        with self._queue_lock:
            request = InferenceRequest(
                request_id=self._next_id, image=image, enqueued_s=time.perf_counter()
            )
            self._next_id += 1
            self._queue.append(request)
        return request.request_id

    @property
    def pending(self) -> int:
        with self._queue_lock:
            return len(self._queue)

    # ------------------------------------------------------------------
    def step(self) -> list[InferenceReply]:
        """Coalesce up to ``max_batch`` queued requests into one secure run."""
        with self._queue_lock:
            if not self._queue:
                return []
            take = min(self.max_batch, len(self._queue))
            requests = [self._queue.popleft() for _ in range(take)]
        images = np.stack([r.image for r in requests])
        # Queue wait ends here: whatever follows (pool creation, a
        # cold-pool miss generating a bundle inside infer) is offline
        # work, reported separately rather than inflating queued_s.
        dequeued = time.perf_counter()
        pool = self.pipeline.prepare_offline(batch=take, bundles=0)
        misses_before = pool.stats.misses
        offline_before = pool.stats.offline_seconds

        try:
            result = self.pipeline.infer(images)
        except Exception:
            # A failed secure execution must not swallow the requests it
            # coalesced: put them back at the queue front (in order) so
            # the next step() retries them, and let the caller see the
            # failure.
            with self._queue_lock:
                self._queue.extendleft(reversed(requests))
            raise
        missed = pool.stats.misses > misses_before
        offline_miss_s = (
            pool.stats.offline_seconds - offline_before if missed else 0.0
        )

        self.metrics.requests += take
        self.metrics.batches += 1
        self.metrics.online_s += result.online_s
        self.metrics.online_bytes += result.total_bytes
        self.metrics.online_rounds += result.crypto_rounds + 1
        self.metrics.miss_offline_s += offline_miss_s
        self.metrics.record_labels(result.traffic_by_label)

        return [
            InferenceReply(
                request_id=request.request_id,
                logits=result.logits[i],
                prediction=int(result.logits[i].argmax()),
                online_s=result.online_s,
                queued_s=dequeued - request.enqueued_s,
                batch_size=take,
                used_pool=result.used_pool,
                offline_miss_s=offline_miss_s,
            )
            for i, request in enumerate(requests)
        ]

    def drain(self) -> list[InferenceReply]:
        """Serve everything queued; returns replies in completion order."""
        replies: list[InferenceReply] = []
        while self.pending:
            replies.extend(self.step())
        return replies

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-able metrics: request/batch counters, offline/online split,
        dealer counters and the per-label traffic breakdown."""
        pools = self.pipeline.pool_stats()
        offline_s = sum(stats["offline_seconds"] for stats in pools.values())
        dealer = self.pipeline.engine.dealer
        return {
            "requests": self.metrics.requests,
            "batches": self.metrics.batches,
            "max_batch": self.max_batch,
            "online_s": self.metrics.online_s,
            "amortized_online_s": self.metrics.amortized_online_s,
            "throughput_rps": (
                self.metrics.requests / self.metrics.online_s
                if self.metrics.online_s
                else 0.0
            ),
            "online_bytes": self.metrics.online_bytes,
            "online_rounds": self.metrics.online_rounds,
            "offline_s": offline_s,
            "miss_offline_s": self.metrics.miss_offline_s,
            "pools": pools,
            "online_dealer_generation": {
                "triples": dealer.triples_issued,
                "bit_triples": dealer.bit_triples_issued,
                "dabits": dealer.dabits_issued,
                "comparison_masks": dealer.comparison_masks_issued,
            },
            "traffic_by_label": self.metrics.traffic_by_label,
        }


# ----------------------------------------------------------------------
def benchmark_serving(
    model: LayeredModel,
    boundary: float,
    images: np.ndarray,
    max_batch: int = 4,
    noise_magnitude: float = 0.1,
    seed: int = 0,
    networked: bool = False,
    networks: tuple = (),
    clients: int = 0,
    clients_network=None,
) -> dict:
    """Measure batched warm-pool serving against the seed behaviour.

    The *baseline* is what the engine did before the offline/online split:
    one request at a time, with the dealer generating every piece of
    correlated randomness inline during ``run()``. The *served* path
    compiles once, pre-generates pools sized for the workload, then
    coalesces the same requests into ``max_batch``-sized secure runs.
    Returns a JSON-able comparison dict.

    With ``networked=True`` the same workload is additionally served over
    a real loopback socket (:func:`repro.serve.remote.benchmark_networked`)
    and, for each :class:`~repro.mpc.network.NetworkModel` in
    ``networks``, under token-bucket LAN/WAN shaping — reporting measured
    wall-clock next to the cost model's prediction for the same run.

    With ``clients > 0`` the networked report additionally carries a
    ``concurrent`` section (:func:`repro.serve.remote.benchmark_concurrent`):
    ``clients`` sessions served at once by one multi-worker
    :class:`~repro.serve.remote.RemoteServer` over ``clients_network``-shaped
    connections, with throughput scaling vs the serialised run of the same
    sessions and byte-identical per-session logits pinned.
    """
    images = np.asarray(images, dtype=np.float32)
    n = images.shape[0]
    if n == 0:
        raise ValueError("benchmark needs at least one image")

    # --- baseline: per-request pipeline with inline dealer generation.
    baseline = C2PIPipeline(model, boundary, noise_magnitude=noise_magnitude, seed=seed)
    start = time.perf_counter()
    baseline_results = [baseline.infer(images[i : i + 1]) for i in range(n)]
    baseline_s = time.perf_counter() - start

    # --- served: compile once, preprocess offline, coalesce online.
    server = C2PIServer(
        model,
        boundary,
        noise_magnitude=noise_magnitude,
        seed=seed,
        max_batch=max_batch,
        warm_bundles=0,
    )
    full_batches, remainder = divmod(n, max_batch)
    offline_start = time.perf_counter()
    if full_batches:
        server.warm(full_batches, batch=max_batch)
    if remainder:
        server.warm(1, batch=remainder)
    offline_s = time.perf_counter() - offline_start

    for i in range(n):
        server.submit(images[i])
    replies = server.drain()
    snapshot = server.snapshot()

    baseline_amortized = baseline_s / n
    served_amortized = snapshot["amortized_online_s"]
    agree = all(
        int(baseline_results[reply.request_id].prediction[0]) == reply.prediction
        for reply in replies
    )
    networked_report = None
    if networked:
        from .remote import benchmark_networked

        networked_report = benchmark_networked(
            model,
            boundary,
            images,
            max_batch=max_batch,
            noise_magnitude=noise_magnitude,
            seed=seed,
            networks=networks,
        )
        networked_report["predictions_agree_with_baseline"] = all(
            int(baseline_results[i].prediction[0]) == prediction
            for i, prediction in enumerate(networked_report["loopback"]["predictions"])
        )
        if clients:
            from .remote import benchmark_concurrent

            networked_report["concurrent"] = benchmark_concurrent(
                model,
                boundary,
                images,
                clients=clients,
                max_batch=max_batch,
                noise_magnitude=noise_magnitude,
                seed=seed,
                network=clients_network,
            )
    return {
        "model": model.name,
        "boundary": boundary,
        "requests": n,
        "max_batch": max_batch,
        "baseline": {
            "total_s": baseline_s,
            "amortized_s": baseline_amortized,
            "bytes": sum(r.total_bytes for r in baseline_results),
        },
        "served": {
            "online_s": snapshot["online_s"],
            "amortized_online_s": served_amortized,
            "offline_s": offline_s,
            "bytes": snapshot["online_bytes"],
            "batches": snapshot["batches"],
            "pool_misses": sum(p["misses"] for p in snapshot["pools"].values()),
            "online_dealer_generation": snapshot["online_dealer_generation"],
        },
        "speedup_online": (
            baseline_amortized / served_amortized if served_amortized else float("inf")
        ),
        "predictions_agree": agree,
        "traffic_by_label": snapshot["traffic_by_label"],
        "networked": networked_report,
    }
