"""``repro.attacks`` — inference-data-privacy attacks (MLA/INA/EINA/DINA)."""

from .base import AttackResult, InferenceDataPrivacyAttack, observed_activations
from .evaluation import AttackFactory, SweepResult, attack_layer_sweep
from .inversion import DINA, EINA, INA, InversionAttack, dina_coefficients
from .mla import MLA

__all__ = [
    "AttackResult",
    "InferenceDataPrivacyAttack",
    "observed_activations",
    "MLA",
    "InversionAttack",
    "INA",
    "EINA",
    "DINA",
    "dina_coefficients",
    "AttackFactory",
    "SweepResult",
    "attack_layer_sweep",
]
