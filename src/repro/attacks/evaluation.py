"""Attack-evaluation harness shared by the figures and the boundary search.

``attack_layer_sweep`` reproduces the measurement behind Figures 1, 4, 5
and 6: run an IDPA against every convolutional layer of a victim model and
record the average SSIM of the reconstructions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..models.layered import LayeredModel
from .base import AttackResult, InferenceDataPrivacyAttack

__all__ = ["AttackFactory", "SweepResult", "attack_layer_sweep"]

# (model, layer_id) -> attack instance
AttackFactory = Callable[[LayeredModel, float], InferenceDataPrivacyAttack]


@dataclass
class SweepResult:
    """Average SSIM per attacked layer for one attack family."""

    attack_name: str
    layer_ids: list[float] = field(default_factory=list)
    avg_ssim: list[float] = field(default_factory=list)
    results: list[AttackResult] = field(default_factory=list)

    def potential_boundary(self, threshold: float = 0.3) -> float | None:
        """First layer (sweeping from the tail) where the attack fails.

        Mirrors phase 1 of Algorithm 1: walking from the last layer toward
        the input, the attack starts failing (SSIM < threshold) somewhere;
        the earliest such layer that is preceded only by failures from the
        tail is the potential boundary. Returns ``None`` when the attack
        succeeds even at the last layer.
        """
        boundary = None
        for layer, score in sorted(
            zip(self.layer_ids, self.avg_ssim), key=lambda pair: -pair[0]
        ):
            if score < threshold:
                boundary = layer
            else:
                break
        return boundary


def attack_layer_sweep(
    model: LayeredModel,
    attack_factory: AttackFactory,
    attacker_images: np.ndarray,
    eval_images: np.ndarray,
    layer_ids: list[float] | None = None,
    noise_magnitude: float = 0.0,
    seed: int = 0,
    attack_name: str = "idpa",
) -> SweepResult:
    """Evaluate one attack family at each requested layer.

    ``attacker_images`` train learning-based attacks (server-side data);
    ``eval_images`` are the victim inputs being reconstructed.
    """
    layer_ids = list(layer_ids) if layer_ids is not None else [
        float(i) for i in model.conv_ids
    ]
    sweep = SweepResult(attack_name=attack_name)
    rng = np.random.default_rng(seed)
    for layer_id in layer_ids:
        attack = attack_factory(model, layer_id)
        attack.prepare(attacker_images)
        result = attack.evaluate(eval_images, noise_magnitude=noise_magnitude, rng=rng)
        sweep.layer_ids.append(layer_id)
        sweep.avg_ssim.append(result.avg_ssim)
        sweep.results.append(result)
    return sweep
