"""Learning-based inversion attacks: INA, EINA and the paper's DINA.

All three train an inversion network ``M*`` that maps the boundary
activation ``M_l(x')`` back to ``x'`` over the attacker's own dataset; they
differ in architecture and loss:

* **INA** — plain convolutional decoder, L2 reconstruction loss;
* **EINA** — ResNet basic blocks (Li et al. 2022), L2 reconstruction loss;
* **DINA** — one basic inverse block per victim sub-block, trained with the
  fine-grained distillation loss of Eq. 1::

      L_DINA = sum_j alpha_j ||D_j - I_j||^2 + alpha_0 ||x - x_hat||^2

  where ``D_j`` is the victim's feature map at distillation point ``j`` and
  ``I_j`` the input of the corresponding basic inverse block. The
  coefficients increase monotonically toward the input
  (``alpha_0 < alpha_1 < ...``), so each inverse block is guided most
  strongly by its nearest distillation point (paper Section III-B). The
  ablation of Figure 5 compares this schedule ("c1") against uniform
  coefficients ("c2").
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..models.inverse import build_inversion_model, distillation_features
from ..models.layered import LayeredModel
from .base import InferenceDataPrivacyAttack, observed_activations

__all__ = ["InversionAttack", "INA", "EINA", "DINA", "dina_coefficients"]


def dina_coefficients(num_points: int, schedule: str = "increasing") -> list[float]:
    """The alpha_0..alpha_N weights of Eq. 1.

    ``increasing`` is the paper's DINA-c1 schedule: alpha_0 = 1,
    alpha_1 = 3, alpha_j = 2 * alpha_{j-1} for j >= 2. ``uniform`` is the
    DINA-c2 ablation (all ones).
    """
    if schedule == "uniform":
        return [1.0] * (num_points + 1)
    if schedule != "increasing":
        raise ValueError(f"unknown coefficient schedule {schedule!r}")
    alphas = [1.0]
    if num_points >= 1:
        alphas.append(3.0)
    while len(alphas) < num_points + 1:
        alphas.append(alphas[-1] * 2.0)
    return alphas


class InversionAttack(InferenceDataPrivacyAttack):
    """Shared trainer for the three inversion-network attacks."""

    kind = "ina"

    def __init__(
        self,
        model: LayeredModel,
        layer_id: float,
        epochs: int = 5,
        batch_size: int = 32,
        lr: float = 2e-3,
        seed: int = 0,
        noise_magnitude: float = 0.0,
        coefficient_schedule: str = "increasing",
    ):
        super().__init__(model, layer_id)
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.rng = np.random.default_rng(seed)
        # A strong attacker knows the defence parameters (the server chose
        # lambda itself), so it trains with matching noise augmentation.
        self.noise_magnitude = noise_magnitude
        self.coefficient_schedule = coefficient_schedule
        self.inverse = build_inversion_model(
            model, layer_id, kind=self.kind, rng=np.random.default_rng(seed + 1)
        )
        self.loss_history: list[float] = []

    # ------------------------------------------------------------------
    def _loss(self, images: np.ndarray) -> nn.Tensor:
        """One minibatch loss; subclasses override for distillation."""
        activations = observed_activations(
            self.model, self.layer_id, images, self.noise_magnitude, self.rng
        )
        recovered = self.inverse(nn.Tensor(activations))
        return nn.l2_loss(recovered, nn.Tensor(images)) / images.shape[0]

    def prepare(self, attacker_images: np.ndarray) -> None:
        """Train the inversion network on the attacker's dataset."""
        optimizer = nn.Adam(self.inverse.parameters(), lr=self.lr)
        count = len(attacker_images)
        self.inverse.train()
        self.model.eval()
        self.loss_history = []
        for _ in range(self.epochs):
            order = self.rng.permutation(count)
            epoch_losses = []
            for start in range(0, count, self.batch_size):
                batch = attacker_images[order[start : start + self.batch_size]]
                optimizer.zero_grad()
                loss = self._loss(batch)
                loss.backward()
                optimizer.step()
                epoch_losses.append(float(loss.data))
            self.loss_history.append(float(np.mean(epoch_losses)))
        self.inverse.eval()

    def recover(self, activations: np.ndarray) -> np.ndarray:
        with nn.no_grad():
            return self.inverse(nn.Tensor(activations)).data.copy()


class INA(InversionAttack):
    """Plain inverse-network attack (He et al. 2019)."""

    name = "ina"
    kind = "ina"


class EINA(InversionAttack):
    """Enhanced INA with residual blocks (Li et al. 2022)."""

    name = "eina"
    kind = "eina"


class DINA(InversionAttack):
    """Distillation-based inverse-network attack (this paper)."""

    name = "dina"
    kind = "dina"

    def _loss(self, images: np.ndarray) -> nn.Tensor:
        x = nn.Tensor(images)
        boundary, points = distillation_features(self.model, self.layer_id, x)
        observed = boundary.data.copy()
        if self.noise_magnitude > 0.0:
            observed = observed + self.rng.uniform(
                -self.noise_magnitude, self.noise_magnitude, size=observed.shape
            ).astype(observed.dtype)
        recovered, intermediates = self.inverse.forward_with_intermediates(
            nn.Tensor(observed)
        )
        alphas = dina_coefficients(len(points), self.coefficient_schedule)
        batch = images.shape[0]
        # alpha_0 weights the image-reconstruction term.
        total = nn.l2_loss(recovered, x) * (alphas[0] / batch)
        # Intermediates run from the boundary toward the input
        # (I_{N-1}, ..., I_1); victim points run D_1..D_{N-1}. alpha_j
        # belongs to distillation point j, increasing toward the input.
        for offset, (victim_feature, attack_feature) in enumerate(
            zip(reversed(points), intermediates)
        ):
            j = len(points) - offset  # distillation point index N-1..1
            total = total + nn.l2_loss(attack_feature, victim_feature) * (
                alphas[j] / batch
            )
        return total
