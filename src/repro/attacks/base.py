"""Common infrastructure for inference-data-privacy attacks (IDPAs).

An IDPA models the semi-honest server of Section II: it observes the
boundary-layer activation ``M_l(x)`` (possibly perturbed by the client's
noise) and tries to reconstruct the client's input image ``x``. Attack
success is quantified by the average SSIM between reconstructions and true
inputs; the paper deems an attack failed below a threshold (usually 0.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import nn
from ..metrics import ssim
from ..models.layered import LayeredModel

__all__ = ["AttackResult", "InferenceDataPrivacyAttack", "observed_activations"]


@dataclass
class AttackResult:
    """Reconstructions and their SSIM scores for one attacked layer."""

    layer_id: float
    recovered: np.ndarray
    targets: np.ndarray
    per_image_ssim: list[float] = field(default_factory=list)

    @property
    def avg_ssim(self) -> float:
        """The paper's "Avg. SSIM" (y-axis of Figures 4-6 and 8)."""
        return float(np.mean(self.per_image_ssim))

    def succeeded(self, threshold: float = 0.3) -> bool:
        """Whether the attack counts as a successful recovery."""
        return self.avg_ssim >= threshold

    @classmethod
    def from_images(
        cls, layer_id: float, recovered: np.ndarray, targets: np.ndarray
    ) -> "AttackResult":
        scores = [ssim(recovered[i], targets[i]) for i in range(len(targets))]
        return cls(
            layer_id=layer_id,
            recovered=recovered,
            targets=targets,
            per_image_ssim=scores,
        )


def observed_activations(
    model: LayeredModel,
    layer_id: float,
    images: np.ndarray,
    noise_magnitude: float = 0.0,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """The server's view of the boundary activation for a batch.

    With a non-zero ``noise_magnitude`` this reproduces what the server
    reconstructs after the client reveals its uniformly perturbed share:
    ``M_l(x) + Delta`` with ``Delta ~ U(-lambda, lambda)``.
    """
    with nn.no_grad():
        activation = model.forward_to(nn.Tensor(images), layer_id).data.copy()
    if noise_magnitude > 0.0:
        rng = rng or np.random.default_rng()
        activation += rng.uniform(
            -noise_magnitude, noise_magnitude, size=activation.shape
        ).astype(activation.dtype)
    return activation


class InferenceDataPrivacyAttack:
    """Base class: prepare once (e.g. train an inversion model), then
    recover inputs from observed activations."""

    name = "idpa"

    def __init__(self, model: LayeredModel, layer_id: float):
        self.model = model
        self.layer_id = layer_id

    def prepare(self, attacker_images: np.ndarray) -> None:
        """Fit any attack machinery on the attacker's own data.

        The server is assumed to possess (or synthesise) data from the same
        distribution as the client's inputs — the standard IDPA threat
        model. MLA needs no preparation.
        """

    def recover(self, activations: np.ndarray) -> np.ndarray:
        """Reconstruct NCHW images in [0, 1] from boundary activations."""
        raise NotImplementedError

    def evaluate(
        self,
        eval_images: np.ndarray,
        noise_magnitude: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> AttackResult:
        """Attack a batch of victim images and score the reconstructions."""
        activations = observed_activations(
            self.model, self.layer_id, eval_images, noise_magnitude, rng
        )
        recovered = self.recover(activations)
        return AttackResult.from_images(self.layer_id, recovered, eval_images)

    def evaluate_with_defense(self, eval_images: np.ndarray, defense) -> AttackResult:
        """Attack activations perturbed by an arbitrary client defence.

        ``defense`` is any object with an ``apply(activation) -> activation``
        method (see :mod:`repro.core.defenses`); this generalises the
        uniform-noise evaluation used by the paper's Figure 6.
        """
        activations = observed_activations(self.model, self.layer_id, eval_images)
        recovered = self.recover(defense.apply(activations))
        return AttackResult.from_images(self.layer_id, recovered, eval_images)
