"""Maximum-likelihood attack (MLA) of He et al. (2019).

MLA inverts the network prefix by direct optimisation: starting from a
random image, it minimises ``|| M_l(x_hat) - M_l(x) ||_2^2`` by gradient
descent on the *input*, clipping to the valid pixel range after every
step. The paper runs 10 000 plain-gradient-descent iterations; the
reproduction defaults to Adam with fewer iterations, which reaches the same
objective plateau much faster on CPU (the optimiser choice only affects
convergence speed, not the attack's information-theoretic power).
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..models.layered import LayeredModel
from .base import InferenceDataPrivacyAttack

__all__ = ["MLA"]


class MLA(InferenceDataPrivacyAttack):
    """Gradient-descent input reconstruction."""

    name = "mla"

    def __init__(
        self,
        model: LayeredModel,
        layer_id: float,
        iterations: int = 300,
        lr: float = 0.05,
        seed: int = 0,
        init: str = "random",
    ):
        super().__init__(model, layer_id)
        self.iterations = iterations
        self.lr = lr
        self.rng = np.random.default_rng(seed)
        if init not in ("random", "gray"):
            raise ValueError(f"unknown init {init!r}")
        self.init = init
        self.loss_history: list[float] = []

    def recover(self, activations: np.ndarray) -> np.ndarray:
        batch = activations.shape[0]
        image_shape = (batch, *self.model.input_shape)
        if self.init == "random":
            start = self.rng.random(image_shape).astype(np.float32)
        else:
            start = np.full(image_shape, 0.5, dtype=np.float32)

        x_hat = nn.Tensor(start, requires_grad=True)
        target = nn.Tensor(activations)
        optimizer = nn.Adam([x_hat], lr=self.lr)
        was_training = self.model.training
        self.model.eval()
        self.loss_history = []
        try:
            for _ in range(self.iterations):
                optimizer.zero_grad()
                predicted = self.model.forward_to(x_hat, self.layer_id)
                loss = nn.l2_loss(predicted, target)
                loss.backward()
                optimizer.step()
                # Projection onto the valid pixel box, as in the original attack.
                np.clip(x_hat.data, 0.0, 1.0, out=x_hat.data)
                self.loss_history.append(float(loss.data))
        finally:
            self.model.train(was_training)
        return x_hat.data.copy()
