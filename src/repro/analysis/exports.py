"""Export-drift pass: ``__all__`` and the public surface must agree.

Promoted from ``tests/test_exports.py`` (which is now a thin wrapper over
this module, so one implementation serves both CI entry points). The
motivating bug: ``multiply_public_constant`` was public in
``protocols/linear.py`` — and re-exported by ``protocols/__init__`` —
while missing from the module's own ``__all__``; harmless until a
``from ... import *`` or an API doc generator silently drops it.

Rules, for every module that declares ``__all__``:

``exports/missing-export``
    A public top-level function/class/constant absent from ``__all__``.

``exports/ghost-export``
    An ``__all__`` entry that resolves to nothing: not defined, not
    imported, and (for a package ``__init__``) not a submodule.

Modules without an ``__all__`` are skipped — opting into the audit is
the act of declaring one.
"""

from __future__ import annotations

import ast

from .core import Finding, SourceModule, emit

__all__ = [
    "NAME",
    "run",
    "audit_module",
    "declared_all",
    "public_definitions",
    "imported_names",
]

NAME = "exports"


def declared_all(tree: ast.Module) -> tuple[ast.Assign, list[str]] | None:
    """The ``__all__`` assignment node and its names, or None."""
    for node in tree.body:
        if isinstance(node, ast.Assign) and any(
            getattr(target, "id", None) == "__all__" for target in node.targets
        ):
            try:
                names = [ast.literal_eval(element) for element in node.value.elts]
            except (AttributeError, ValueError):
                return None  # computed __all__: out of the audit's reach
            return node, names
    return None


def public_definitions(tree: ast.Module) -> set[str]:
    """Top-level public functions, classes, and constants."""
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if not node.name.startswith("_"):
                names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                name = getattr(target, "id", None)
                if name and not name.startswith("_") and name != "__all__":
                    names.add(name)
        elif isinstance(node, ast.AnnAssign):
            name = getattr(node.target, "id", None)
            if name and not name.startswith("_"):
                names.add(name)
    return names


def imported_names(tree: ast.Module) -> set[str]:
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                names.add((alias.asname or alias.name).split(".")[0])
    return names


def audit_module(module: SourceModule, findings: list[Finding]) -> None:
    declaration = declared_all(module.tree)
    if declaration is None:
        return
    node, declared = declaration
    public = public_definitions(module.tree)

    for name in sorted(public - set(declared)):
        emit(
            findings,
            module,
            "exports/missing-export",
            node,
            f"public definition {name!r} is absent from __all__ — star "
            "imports and API docs will silently drop it",
        )

    resolvable = public | imported_names(module.tree)
    if module.path.name == "__init__.py":
        package_dir = module.path.parent
        resolvable |= {child.stem for child in package_dir.glob("*.py")}
        resolvable |= {
            child.name for child in package_dir.iterdir() if child.is_dir()
        }
    for name in sorted(set(declared) - resolvable):
        emit(
            findings,
            module,
            "exports/ghost-export",
            node,
            f"__all__ lists {name!r} but nothing defines, imports, or "
            "provides it — a star import raises AttributeError",
        )


def run(modules: list[SourceModule]) -> list[Finding]:
    findings: list[Finding] = []
    for module in modules:
        audit_module(module, findings)
    return findings
