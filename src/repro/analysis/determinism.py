"""Determinism lint: protocol paths must be replayable bit-for-bit.

The repo's central reproducibility contract — ``bytes_match`` and
byte-identical logits across in-process / socket / shm placements,
serial vs concurrent sessions, and fault-retried requests — holds only
if nothing on a wire- or logit-affecting path consumes nondeterministic
ambient state. Three rules:

``determinism/unseeded-rng``
    Module-state randomness (``random.random()``, ``np.random.rand``,
    ``np.random.seed``) or an unseeded ``np.random.default_rng()`` in
    the mpc/serve layers. Every rng there must be constructed from an
    explicit seed (or derived via ``derive_session_seed``) so dealer
    streams, share draws and noise replay identically.

``determinism/wall-clock``
    ``time.time()`` / ``datetime.now()`` in the mpc/serve layers.
    Wall-clock values differ across runs and across machines (the PR-4
    shaper-skew bug was exactly a wall-clock header leaking into
    behavior); deadlines belong on ``time.monotonic()`` and duration
    measurement on ``time.perf_counter()``, neither of which is flagged.
    The three frame-header timestamp sites in ``transport.py``/``shm.py``
    are the documented allowlist seeds: the stamp is diagnostic, excluded
    from the payload CRC and from every byte-accounting counter, and
    carries an inline ``# audit: allow[determinism/wall-clock]``.

``determinism/set-iteration``
    Iterating a ``set`` (or ``frozenset``) on a protocol-order path.
    Set iteration order depends on hash seeding and insertion history —
    two runs (or two parties!) can walk the same elements in different
    orders, silently reordering wire frames or material draws. Scoped to
    the modules that decide protocol order (protocol halves, engine,
    program/IR, dealer, preprocessing); ``sorted(...)`` over a set is
    the sanctioned fix and is not flagged.
"""

from __future__ import annotations

import ast

from .core import Finding, SourceModule, dotted_name, emit

__all__ = ["NAME", "RNG_SCOPE", "CLOCK_SCOPE", "SET_SCOPE", "run"]

NAME = "determinism"

RNG_SCOPE = ("mpc/", "serve/")
CLOCK_SCOPE = ("mpc/", "serve/")
# Modules whose control flow decides wire/material ordering.
SET_SCOPE = (
    "mpc/protocols/",
    "mpc/engine.py",
    "mpc/party.py",
    "mpc/program.py",
    "mpc/dealer.py",
    "mpc/preprocessing.py",
    "mpc/sharing.py",
)

_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
}

# np.random module-state functions commonly reached for; the module
# attribute check below catches the rest generically.
_SEEDED_FACTORIES = {"default_rng", "Generator", "SeedSequence", "PCG64"}


def _audit_rng(module: SourceModule, findings: list[Finding]) -> None:
    stdlib_random_names = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random":
                    stdlib_random_names.add(alias.asname or "random")

    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name is None:
            continue
        parts = name.split(".")
        # stdlib `random` module state: random.random(), random.shuffle()...
        if parts[0] in stdlib_random_names and len(parts) == 2:
            if parts[1] == "Random" and node.args:
                continue  # random.Random(seed): explicit stream
            emit(
                findings,
                module,
                "determinism/unseeded-rng",
                node,
                f"{name}() draws from process-global random state — protocol "
                "paths must use an explicitly seeded generator",
            )
            continue
        # numpy module-state: np.random.<fn>(...) for anything that is not
        # an explicit generator construction.
        if len(parts) >= 3 and parts[-2] == "random" and parts[0] in ("np", "numpy"):
            attr = parts[-1]
            if attr in _SEEDED_FACTORIES:
                if not node.args and not node.keywords:
                    emit(
                        findings,
                        module,
                        "determinism/unseeded-rng",
                        node,
                        f"np.random.{attr}() without a seed — the stream "
                        "differs every process start; derive the seed from "
                        "the session/dealer seed instead",
                    )
                continue
            emit(
                findings,
                module,
                "determinism/unseeded-rng",
                node,
                f"np.random.{attr}() uses numpy's global rng state — "
                "protocol paths must thread an explicit Generator",
            )


def _audit_clock(module: SourceModule, findings: list[Finding]) -> None:
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name in _WALL_CLOCK:
            emit(
                findings,
                module,
                "determinism/wall-clock",
                node,
                f"{name}() on a protocol path — wall-clock reads are not "
                "replayable (use monotonic/perf_counter, or allowlist a "
                "diagnostic-only site inline)",
            )


def _is_set_expr(expr: ast.expr, local_sets: set[str]) -> bool:
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call):
        name = dotted_name(expr.func)
        if name in ("set", "frozenset"):
            return True
        # set operations yield sets: a.union(b), a.difference(b), ...
        if isinstance(expr.func, ast.Attribute) and expr.func.attr in (
            "union", "difference", "intersection", "symmetric_difference",
        ):
            return _is_set_expr(expr.func.value, local_sets)
    if isinstance(expr, ast.Name):
        return expr.id in local_sets
    if isinstance(expr, ast.BinOp) and isinstance(
        expr.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(expr.left, local_sets) or _is_set_expr(
            expr.right, local_sets
        )
    return False


def _audit_sets(module: SourceModule, findings: list[Finding]) -> None:
    # Names assigned a set anywhere in the module (annotations included).
    local_sets: set[str] = set()
    for node in ast.walk(module.tree):
        value = None
        target = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            target, value = node.target, node.value
        if (
            target is not None
            and isinstance(target, ast.Name)
            and _is_set_expr(value, local_sets)
        ):
            local_sets.add(target.id)

    def flag(node: ast.AST, what: str) -> None:
        emit(
            findings,
            module,
            "determinism/set-iteration",
            node,
            f"iteration over a set ({what}) on a protocol-order path — set "
            "order varies across runs and parties; iterate sorted(...) or "
            "a list/deque instead",
        )

    for node in ast.walk(module.tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            if _is_set_expr(node.iter, local_sets):
                flag(node, ast.unparse(node.iter))
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp, ast.SetComp)):
            for generator in node.generators:
                if _is_set_expr(generator.iter, local_sets):
                    flag(node, ast.unparse(generator.iter))
        elif isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if (
                name in ("list", "tuple", "enumerate", "iter")
                and node.args
                and _is_set_expr(node.args[0], local_sets)
            ):
                flag(node, ast.unparse(node.args[0]))


def run(modules: list[SourceModule]) -> list[Finding]:
    findings: list[Finding] = []
    for module in modules:
        if module.in_scope(RNG_SCOPE):
            _audit_rng(module, findings)
        if module.in_scope(CLOCK_SCOPE):
            _audit_clock(module, findings)
        if module.in_scope(SET_SCOPE):
            _audit_sets(module, findings)
    return findings
