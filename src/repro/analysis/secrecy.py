"""Secret-flow taint pass: shares reach the wire only through sanitizers.

The crypto-clear split stays private because every byte that crosses the
process boundary is either (a) a fresh additive/XOR share — uniformly
distributed on its own — or (b) a protocol value masked by dealer
randomness before the reveal (the Beaver ``d = x - a`` / ``e = y - b``
openings, the comparison circuit's ``z = x + r`` masked reveal). The
runtime byte-identity tests exercise this on the paths they run; this
pass checks it on *every* wire sink in the protocol layer.

Model (function-local, provenance-based): for each payload expression
handed to a movement sink (``push`` / ``push_deferred`` / ``swap`` /
``swap_segments`` / ``push_segments``), walk its definition chain and
require a *sanctioned* producer:

* ``io.stage(...)`` — packed-word staging; by contract its input is a
  pre-masked/share value (the staging primitives below enforce it);
* a pooled frame (``alloc_words`` / ``alloc_frame`` / ``_pair_frame``)
  whose every in-place write (``out=``, subscript store, ``np.copyto``)
  mixes in a mask operand — dealer-material attribute (``triple.a``,
  ``mask.r``, ``correlation.mask``) or a uniform ring draw
  (``random_ring`` / ``rng.integers``);
* a share freshly split by ``share_additive`` / ``share_boolean`` /
  ``share_boolean_words`` (one share alone is uniform);
* a parameter of one of the *trusted movement primitives* — the
  ``swap_ring`` family and ``party_open`` — whose documented contract is
  "callers pass masked values" (their callers are audited in turn).

Anything else — a bare parameter, an unmasked intermediate, an unknown
call — is flagged: it may be exactly the secret the protocol exists to
hide. Taint-preserving wrappers (``memoryview(...).cast``, ``_buffer``,
``bytes``, ``pack_bits``, ``np.ascontiguousarray``) are looked through.

A second rule bans ``print`` / ``logging`` in the protocol layer
outright: a debug print of a live share is the classic leak, and the
protocol modules have no legitimate console output.
"""

from __future__ import annotations

import ast

from .core import Finding, SourceModule, dotted_name, emit

__all__ = ["NAME", "SCOPE", "run"]

NAME = "secrecy"

# The modules where share-typed values live. serve/remote.py and the
# transport are byte movers — they only ever see already-staged buffers
# — but the crypto-producer service (serve/dealer_service.py) *creates*
# material and ships it as blobs, so its dealer-bound frames are audited
# like protocol sinks.
SCOPE = ("mpc/protocols/", "mpc/engine.py", "mpc/party.py", "serve/dealer_service.py")

# Payload-moving sink methods and the argument that is the payload.
# send_blob is the dealer service's bundle sink: in scope its payload
# must come from a sealed-bundle producer (see _SEALED_CALLS).
_SINKS = {"push": 0, "push_deferred": 0, "swap": 0, "send_blob": 0}
_SEGMENT_SINKS = {"push_segments": 0, "swap_segments": 0}

# Producers whose result is cleared for the wire as-is.
_STAGING_CALLS = {"stage"}
# Sealed-bundle producers: per-party material serialized by
# pack_party_bundle (each half is individually uniform), and the dealer
# reply sealer that selects/blanks record fields for one requester.
# These are the only sanctioned sources for a dealer-bound blob frame.
_SEALED_CALLS = {"pack_party_bundle", "_seal_reply"}
# Pooled-frame allocators: contents must be written via masked ops.
_ALLOCATORS = {"alloc_words", "alloc_frame", "_pair_frame"}
# Splitting a secret yields two individually-uniform shares.
_SHARE_SPLITTERS = {"share_additive", "share_boolean", "share_boolean_words"}
# Content-preserving wrappers the checker looks through.
_WRAPPERS = {"_buffer", "memoryview", "bytes", "pack_bits", "ascontiguousarray"}
# Movement primitives whose *parameters* are pre-masked by contract.
_TRUSTED_PRIMITIVES = {
    "swap_ring",
    "swap_ring_pair",
    "swap_bits",
    "party_open",
}
# Mask-producing calls: uniform draws that blind whatever they touch.
_MASK_CALLS = {"random_ring", "integers", "next"}

_LOG_SINKS = {"print"}
_LOG_MODULES = {"logging", "logger", "log"}


def _call_tail(node: ast.Call) -> str | None:
    """The final attribute/function name of a call (``io.stage`` -> stage)."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


class _FunctionFacts:
    """Single-pass collection of a function's local definitions."""

    def __init__(self, fn: ast.FunctionDef | ast.AsyncFunctionDef):
        self.fn = fn
        self.params = {arg.arg for arg in fn.args.args}
        self.params.update(arg.arg for arg in fn.args.kwonlyargs)
        if fn.args.vararg:
            self.params.add(fn.args.vararg.arg)
        self.assigns: dict[str, ast.expr] = {}
        # name -> set of sibling names from one tuple-unpacked allocator
        self.alloc_groups: dict[str, set[str]] = {}
        self.writes: list[ast.Call] = []  # calls carrying an out= kwarg
        self.stores: list[tuple[str, ast.expr, ast.AST]] = []  # subscript stores
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign):
                self._record_assign(node)
            elif isinstance(node, ast.Call):
                if any(kw.arg == "out" for kw in node.keywords):
                    self.writes.append(node)
                tail = _call_tail(node)
                if tail == "copyto" and len(node.args) >= 2:
                    target = node.args[0]
                    if isinstance(target, ast.Name):
                        self.stores.append((target.id, node.args[1], node))

    def _record_assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, ast.Name):
                self.assigns[target.id] = node.value
            elif isinstance(target, ast.Tuple) and isinstance(node.value, ast.Call):
                tail = _call_tail(node.value)
                if tail in _ALLOCATORS:
                    names = {
                        element.id
                        for element in target.elts
                        if isinstance(element, ast.Name)
                    }
                    for name in names:
                        self.alloc_groups[name] = names
            elif isinstance(target, ast.Subscript) and isinstance(
                target.value, ast.Name
            ):
                self.stores.append((target.value.id, node.value, node))


def _unwrap(expr: ast.expr, facts: _FunctionFacts, depth: int = 0) -> ast.expr:
    """Strip content-preserving wrappers and name indirection."""
    while depth < 12:
        depth += 1
        if isinstance(expr, ast.Call):
            tail = _call_tail(expr)
            if tail == "cast" and isinstance(expr.func, ast.Attribute):
                expr = expr.func.value  # memoryview(x).cast("B") -> memoryview(x)
                continue
            if tail in _WRAPPERS and expr.args:
                expr = expr.args[0]
                continue
            return expr
        if isinstance(expr, ast.Name) and expr.id in facts.assigns:
            expr = facts.assigns[expr.id]
            continue
        return expr
    return expr


def _is_alloc_chain(expr: ast.expr) -> bool:
    """``io.alloc_words(...)`` possibly followed by ``.reshape(...)`` etc."""
    while True:
        if isinstance(expr, ast.Call):
            tail = _call_tail(expr)
            if tail in _ALLOCATORS:
                return True
            if tail in {"reshape", "view", "astype"} and isinstance(
                expr.func, ast.Attribute
            ):
                expr = expr.func.value
                continue
        if isinstance(expr, ast.Subscript):
            expr = expr.value
            continue
        return False


def _is_mask_operand(expr: ast.expr, facts: _FunctionFacts) -> bool:
    """Does this operand blind the value it is combined with?

    Dealer material arrives as attribute access on a material record
    (``triple.a``, ``mask.r``, ``correlation.mask``, ``dabit.boolean``)
    — in the protocol layer *any* attribute operand is a material read,
    since protocol functions are free functions over arrays and records.
    Fresh uniform draws (``random_ring``, ``rng.integers``) and names
    bound to either also qualify.
    """
    if isinstance(expr, ast.Attribute):
        return True
    if isinstance(expr, ast.Call):
        tail = _call_tail(expr)
        if tail in _MASK_CALLS:
            return True
    if isinstance(expr, ast.Name):
        defn = facts.assigns.get(expr.id)
        if defn is not None and defn is not expr:
            return _is_mask_operand(defn, facts)
    if isinstance(expr, ast.BinOp):
        return _is_mask_operand(expr.left, facts) or _is_mask_operand(
            expr.right, facts
        )
    return False


def _alias_set(name: str, facts: _FunctionFacts) -> set[str]:
    """Every local name viewing the same allocated frame."""
    aliases = set(facts.alloc_groups.get(name, {name}))
    grew = True
    while grew:
        grew = False
        for other, defn in facts.assigns.items():
            if other in aliases:
                continue
            base = defn
            while isinstance(base, (ast.Subscript, ast.Attribute, ast.Call)):
                if isinstance(base, ast.Call):
                    if not isinstance(base.func, ast.Attribute):
                        break
                    base = base.func.value
                else:
                    base = base.value
            if isinstance(base, ast.Name) and base.id in aliases:
                aliases.add(other)
                grew = True
    return aliases


def _unsanitized_frame_writes(
    name: str, facts: _FunctionFacts
) -> list[ast.AST]:
    """In-place writes into an allocated frame that carry no mask."""
    aliases = _alias_set(name, facts)
    offending: list[ast.AST] = []
    for call in facts.writes:
        out = next(kw.value for kw in call.keywords if kw.arg == "out")
        target = out
        while isinstance(target, ast.Subscript):
            target = target.value
        if not (isinstance(target, ast.Name) and target.id in aliases):
            continue
        if not any(_is_mask_operand(arg, facts) for arg in call.args):
            offending.append(call)
    for target_name, value, node in facts.stores:
        if target_name in aliases and not _is_mask_operand(value, facts):
            offending.append(node)
    return offending


def _check_payload(
    payload: ast.expr,
    facts: _FunctionFacts,
    module: SourceModule,
    sink: ast.Call,
    findings: list[Finding],
) -> None:
    resolved = _unwrap(payload, facts)

    if isinstance(resolved, ast.Call):
        tail = _call_tail(resolved)
        if tail in _STAGING_CALLS:
            return  # io.stage(...): staged through the pool, pre-masked
        if tail in _SEALED_CALLS:
            return  # sealed party bundle: sanctioned dealer-bound sink
        if _is_alloc_chain(resolved):
            # Direct push of an anonymous frame: nothing was written into
            # it locally, so its content is pool scratch — harmless.
            return
        if tail in _SHARE_SPLITTERS:
            return
        emit(
            findings,
            module,
            "secrecy/unsanitized-sink",
            sink,
            f"payload produced by unvetted call {tail!r} reaches the wire "
            "without an allowlisted sanitizer (stage / masked frame / "
            "share split)",
        )
        return

    if isinstance(resolved, ast.Name):
        name = resolved.id
        defn = facts.assigns.get(name)
        if name in facts.alloc_groups or (
            defn is not None and _is_alloc_chain(defn)
        ):
            for write in _unsanitized_frame_writes(name, facts):
                emit(
                    findings,
                    module,
                    "secrecy/unsanitized-sink",
                    write,
                    f"wire frame {name!r} is written without a mask operand "
                    "before being pushed — a raw (unblinded) value would "
                    "cross the process boundary",
                )
            return
        if defn is not None:
            resolved_def = _unwrap(defn, facts)
            if isinstance(resolved_def, ast.Call):
                _check_payload(resolved_def, facts, module, sink, findings)
                return
        if name in facts.params:
            if facts.fn.name in _TRUSTED_PRIMITIVES:
                return  # contract: callers of the primitive pre-mask
            emit(
                findings,
                module,
                "secrecy/unsanitized-sink",
                sink,
                f"parameter {name!r} of {facts.fn.name!r} flows to the wire "
                "unmasked — only the trusted movement primitives may ship "
                "caller values verbatim",
            )
            return
    emit(
        findings,
        module,
        "secrecy/unsanitized-sink",
        sink,
        f"cannot establish sanitized provenance for wire payload in "
        f"{facts.fn.name!r}",
    )


def _audit_function(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
    module: SourceModule,
    findings: list[Finding],
) -> None:
    facts = _FunctionFacts(fn)
    for node in ast.walk(fn):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        if func.attr in _SINKS and node.args:
            _check_payload(node.args[_SINKS[func.attr]], facts, module, node, findings)
        elif func.attr in _SEGMENT_SINKS and node.args:
            segments = node.args[_SEGMENT_SINKS[func.attr]]
            if isinstance(segments, (ast.Tuple, ast.List)):
                for element in segments.elts:
                    _check_payload(element, facts, module, node, findings)
            else:
                _check_payload(segments, facts, module, node, findings)


def _audit_logging(module: SourceModule, findings: list[Finding]) -> None:
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name in _LOG_SINKS or (
            name is not None and name.split(".")[0] in _LOG_MODULES
        ):
            emit(
                findings,
                module,
                "secrecy/print-in-protocol",
                node,
                f"{name}() in the protocol layer — console/log output can "
                "leak live shares; protocol modules must not print",
            )


def run(modules: list[SourceModule]) -> list[Finding]:
    findings: list[Finding] = []
    for module in modules:
        if not module.in_scope(SCOPE):
            continue
        _audit_logging(module, findings)
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                _audit_function(node, module, findings)
    return findings
