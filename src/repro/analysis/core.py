"""Shared infrastructure for the ``c2pi audit`` static-analysis passes.

The auditor never imports the code it inspects: every pass works on the
:mod:`ast` of the source tree, so a module with a heavy import graph (or
a deliberately broken fixture) costs nothing to analyse. The pieces here
are the ones every pass shares:

* :class:`SourceModule` — one parsed file plus its physical lines, with
  inline-suppression lookup (``# audit: allow[rule] -- reason``);
* :class:`Finding` — one rule violation, with a line-independent
  fingerprint so baseline entries survive unrelated edits;
* baseline load/compare — the committed ``AUDIT_BASELINE.json`` holds
  *justified* findings the gate tolerates; anything else fails
  ``c2pi audit --check``.

Suppression policy (see DESIGN.md §11): a suppression comment must sit
on the flagged statement (any of its physical lines) or the line
directly above it, must name the rule it silences — ``allow[pass]``
silences every rule of a pass, ``allow[pass/rule]`` exactly one — and
should carry a ``--`` justification. Suppressions are grep-able review
anchors, not configuration: broad exemptions belong in the pass itself,
where they are documented once.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "Finding",
    "SourceModule",
    "AuditReport",
    "load_modules",
    "emit",
    "load_baseline",
    "dotted_name",
]

_SUPPRESS_RE = re.compile(r"#\s*audit:\s*allow\[([a-z0-9/_-]+)\]")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str  # "pass/rule-id"
    path: str  # posix path relative to the scan root
    line: int
    message: str

    @property
    def fingerprint(self) -> tuple[str, str, str]:
        """Line-number-free identity used for baseline matching.

        A baseline entry written against line 42 must keep matching when
        an unrelated edit above shifts the finding to line 57 — only the
        rule, the file and the message participate.
        """
        return (self.rule, self.path, self.message)

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class SourceModule:
    """One parsed source file: tree, physical lines, suppression index."""

    path: Path
    rel: str  # posix-relative to the scan root
    text: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)

    @classmethod
    def parse(cls, path: Path, root: Path) -> "SourceModule":
        # Explicit encoding: python source is UTF-8 by definition
        # (PEP 3120); the platform locale must not decide whether the
        # auditor can read a docstring with non-ASCII in it.
        text = path.read_text(encoding="utf-8")
        return cls(
            path=path,
            rel=path.relative_to(root).as_posix(),
            text=text,
            tree=ast.parse(text, filename=str(path)),
            lines=text.splitlines(),
        )

    def in_scope(self, fragments: tuple[str, ...]) -> bool:
        """Whether this module falls under a pass's path scope.

        Fragment matching (``"mpc/protocols/" in rel``) rather than
        prefix matching, so the fixture trees under ``tests/analysis``
        can mirror the real layout one directory deeper and still hit
        the same scopes.
        """
        return any(fragment in self.rel for fragment in fragments)

    def _allowed_rules(self, line: int) -> list[str]:
        if 1 <= line <= len(self.lines):
            return _SUPPRESS_RE.findall(self.lines[line - 1])
        return []

    def suppressed(self, rule: str, node: ast.AST) -> bool:
        """Inline ``# audit: allow[...]`` lookup for a finding at ``node``.

        The tag may sit on any physical line of the flagged statement
        (multi-line calls put the interesting expression far from the
        statement's first line) or on the line directly above it.
        ``allow[secrecy]`` silences every ``secrecy/*`` rule;
        ``allow[secrecy/print-in-protocol]`` silences exactly one.
        """
        start = getattr(node, "lineno", 0)
        end = getattr(node, "end_lineno", start) or start
        tags: list[str] = []
        for line in range(start - 1, end + 1):
            tags.extend(self._allowed_rules(line))
        return any(rule == tag or rule.startswith(tag + "/") for tag in tags)


def emit(
    findings: list[Finding],
    module: SourceModule,
    rule: str,
    node: ast.AST,
    message: str,
) -> None:
    """Append a finding unless an inline suppression covers it."""
    if module.suppressed(rule, node):
        return
    findings.append(
        Finding(
            rule=rule,
            path=module.rel,
            line=getattr(node, "lineno", 0),
            message=message,
        )
    )


def load_modules(root: Path) -> list[SourceModule]:
    """Parse every ``*.py`` under ``root`` (sorted for stable output)."""
    root = Path(root)
    modules = []
    for path in sorted(root.rglob("*.py")):
        modules.append(SourceModule.parse(path, root))
    return modules


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


# ----------------------------------------------------------------------
# report + baseline
# ----------------------------------------------------------------------
@dataclass
class AuditReport:
    """The outcome of one audit run over one source tree."""

    root: str
    findings: list[Finding]
    passes: list[str]
    modules_scanned: int

    def summary(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))

    def as_dict(self) -> dict:
        return {
            "root": self.root,
            "passes": self.passes,
            "modules_scanned": self.modules_scanned,
            "findings": [finding.as_dict() for finding in self.findings],
            "summary": self.summary(),
        }

    def apply_baseline(
        self, baseline: list[dict]
    ) -> tuple[list[Finding], list[dict]]:
        """Split findings into (new, stale-baseline-entries).

        A baseline entry matches at most one finding (so two identical
        regressions cannot hide behind one justification); entries that
        match nothing are *stale* and should be pruned.
        """
        unmatched = list(baseline)
        new: list[Finding] = []
        for finding in self.findings:
            for entry in unmatched:
                if (
                    entry.get("rule") == finding.rule
                    and entry.get("path") == finding.path
                    and entry.get("message") == finding.message
                ):
                    unmatched.remove(entry)
                    break
            else:
                new.append(finding)
        return new, unmatched


def load_baseline(path: Path) -> list[dict]:
    """The committed baseline: a list of justified finding entries.

    Every entry must carry a ``justification`` — an unexplained baseline
    entry is indistinguishable from a rubber-stamped bug, so loading one
    is an error, not a warning.
    """
    data = json.loads(Path(path).read_text())
    entries = data.get("findings", [])
    for entry in entries:
        missing = {"rule", "path", "message"} - set(entry)
        if missing:
            raise ValueError(f"baseline entry missing {sorted(missing)}: {entry}")
        if not entry.get("justification"):
            raise ValueError(
                f"baseline entry for {entry['path']} [{entry['rule']}] has no "
                "justification — baselined findings must explain themselves"
            )
    return entries
