"""Interprocedural infrastructure for the protocol proof layer.

PR 7's passes are per-function pattern matchers; the properties that
actually wedge or leak a running deployment — a push with no matching
pull, a secret laundered through a helper's return value — are
*cross-function, cross-party* properties. This module grows the shared
machinery the :mod:`~repro.analysis.schedule` and
:mod:`~repro.analysis.taint` passes stand on:

* :class:`ProjectIndex` — every function definition in the scanned tree
  keyed by name and qualified name, plus a cross-module constant table
  (literal tuples/lists/strings, resolved through ``from X import Y``)
  so loop bounds like ``SUFFIX_STEPS`` unroll even when the constant
  lives in a sibling module;
* :class:`CommEvent` — one symbolic communication action (send / recv /
  swap / stage / accounting round / dealer-material consumption) with
  its resolved label and source anchor;
* :class:`TraceExtractor` — a small abstract interpreter that walks
  straight-line code, ``if`` branches and ``for`` loops of one function
  *under a party assumption*, inlining project-local helper calls (with
  label-parameter binding, so ``party_open(io, z, label="masked-reveal")``
  traces the ``swap_ring`` inside it under the right label) and emitting
  the ordered communication trace — the object the duality checker
  consumes;
* :func:`collect_events` — the order-free variant: the union of
  communication calls reachable from a function through same-module
  helpers, for code whose control flow is request-driven (the dealer RPC
  loop) where only *label-level* duality is meaningful.

Like every pass, nothing here imports the code under analysis — the AST
is the only contact.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePosixPath

from .core import SourceModule

__all__ = [
    "CommEvent",
    "FunctionInfo",
    "ProjectIndex",
    "TraceExtractor",
    "UnresolvableTrace",
    "build_index",
    "collect_events",
    "MOVEMENT_KINDS",
    "SEND_CALLS",
    "RECV_CALLS",
    "SWAP_CALLS",
    "STAGE_CALLS",
    "ACCT_CALLS",
    "TICK_CALLS",
    "CONSUME_METHODS",
]

# ----------------------------------------------------------------------
# the communication vocabulary
# ----------------------------------------------------------------------
# Transport / Channel methods, canonicalised by direction. ``push`` and
# ``push_deferred`` differ only in physical framing (accounting and
# ordering are identical — DESIGN.md §10), so both canonicalise to one
# "send"; the obj/blob control-plane calls of the dealer RPC are sends
# and receives like any other.
SEND_CALLS = {
    "push": 1,
    "push_deferred": 1,
    "push_segments": 1,
    "send_obj": 1,
    "send_blob": 1,
}
RECV_CALLS = {"pull": 0, "recv_obj": 0, "recv_blob": 0}
SWAP_CALLS = {"swap": 1, "swap_segments": 1}
STAGE_CALLS = {"stage": 1}
# Accounting calls: ``exchange``/``send`` record one opening's payload,
# ``tick_round`` only advances the round counter (its label is a round
# bucket, not a wire label — "linear" vs "linear-masked-input").
ACCT_CALLS = {"exchange": 1, "send": 2}
TICK_CALLS = {"tick_round": 0}

#: Dealer-material consumption sites. ``material.next("bit_triples")``
#: names the method as its argument; a direct ``dealer.bit_triples(...)``
#: call names it as the attribute. One consumed item == one opening of
#: the method's wire label (``costs._METHOD_TRAFFIC``) — the invariant
#: the schedule pass cross-checks.
CONSUME_METHODS = {
    "beaver_triples",
    "bit_triples",
    "dabits",
    "comparison_masks",
    "linear_correlation",
}

MOVEMENT_KINDS = frozenset({"send", "recv", "swap"})

_LOOP_UNROLL_LIMIT = 128
_INLINE_DEPTH_LIMIT = 10


@dataclass(frozen=True)
class CommEvent:
    """One symbolic communication action in a function's trace."""

    kind: str  # send | recv | swap | stage | acct | tick | consume
    label: str  # wire label, round bucket, or dealer method for consume
    rel: str  # module path the call physically sits in
    line: int

    @property
    def key(self) -> tuple[str, str]:
        """Line-free identity used for branch-equivalence and duality."""
        return (self.kind, self.label)


@dataclass
class FunctionInfo:
    """One function definition: where it lives and how to call it."""

    qualname: str  # "Class.method" or bare "fn"
    name: str
    module: SourceModule
    node: ast.FunctionDef | ast.AsyncFunctionDef
    cls: str | None = None

    @property
    def params(self) -> list[str]:
        args = self.node.args
        names = [a.arg for a in args.posonlyargs + args.args]
        return names

    def default_bindings(self) -> dict[str, str]:
        """Literal-string defaults, used when tracing with no caller."""
        args = self.node.args
        positional = args.posonlyargs + args.args
        bindings: dict[str, str] = {}
        for arg, default in zip(positional[len(positional) - len(args.defaults):],
                                args.defaults):
            if isinstance(default, ast.Constant) and isinstance(default.value, str):
                bindings[arg.arg] = default.value
        for arg, default in zip(args.kwonlyargs, args.kw_defaults):
            if (
                default is not None
                and isinstance(default, ast.Constant)
                and isinstance(default.value, str)
            ):
                bindings[arg.arg] = default.value
        return bindings


@dataclass
class ProjectIndex:
    """Every scanned function plus the cross-module constant table."""

    functions: dict[str, list[FunctionInfo]] = field(default_factory=dict)
    by_qualname: dict[str, FunctionInfo] = field(default_factory=dict)
    #: (module rel, name) -> literal value (str, int, tuple/list of those)
    constants: dict[tuple[str, str], object] = field(default_factory=dict)
    #: (module rel, local name) -> (source module rel, source name)
    imports: dict[tuple[str, str], tuple[str, str]] = field(default_factory=dict)
    modules: dict[str, SourceModule] = field(default_factory=dict)
    #: class name -> its ``__init__`` (taint uses this to treat project
    #: constructors as returning untainted objects whose *fields* carry
    #: the secrets instead)
    classes: dict[str, FunctionInfo] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def resolve_function(
        self, name: str, cls: str | None = None, module: SourceModule | None = None
    ) -> FunctionInfo | None:
        """The unique project function a call tail refers to, if any.

        Preference order: a method of the caller's own class, then a
        definition in the caller's own module, then a project-unique
        name. Ambiguous names resolve to nothing — the trace stays
        honest rather than guessing.
        """
        candidates = self.functions.get(name, [])
        if not candidates:
            return None
        if cls is not None:
            own = [c for c in candidates if c.cls == cls]
            if len(own) == 1:
                return own[0]
        if module is not None:
            local = [c for c in candidates if c.module.rel == module.rel]
            if len(local) == 1:
                return local[0]
        if len(candidates) == 1:
            return candidates[0]
        return None

    def constant(self, module: SourceModule, name: str) -> object | None:
        """A module-level literal constant, followed through imports."""
        seen: set[tuple[str, str]] = set()
        key = (module.rel, name)
        while key not in seen:
            seen.add(key)
            if key in self.constants:
                return self.constants[key]
            if key in self.imports:
                key = self.imports[key]
                continue
            return None
        return None


def _literal_value(node: ast.expr) -> object | None:
    """The python value of a literal expression (str/int/tuple/list)."""
    if isinstance(node, ast.Constant) and isinstance(node.value, (str, int)):
        return node.value
    if isinstance(node, (ast.Tuple, ast.List)):
        values = [_literal_value(element) for element in node.elts]
        if any(value is None for value in values):
            return None
        return tuple(values)
    return None


def _sibling_rel(importer_rel: str, module_name: str) -> str:
    """Best-effort rel path of ``from .X import Y``'s source module."""
    tail = module_name.split(".")[-1]
    return (PurePosixPath(importer_rel).parent / f"{tail}.py").as_posix()


def build_index(modules: list[SourceModule]) -> ProjectIndex:
    """Index functions, constants and import aliases across the tree."""
    index = ProjectIndex()
    for module in modules:
        index.modules[module.rel] = module
        for statement in module.tree.body:
            if isinstance(statement, ast.Assign) and len(statement.targets) == 1:
                target = statement.targets[0]
                if isinstance(target, ast.Name):
                    value = _literal_value(statement.value)
                    if value is not None:
                        index.constants[(module.rel, target.id)] = value
            elif isinstance(statement, ast.ImportFrom) and statement.module:
                source_rel = _sibling_rel(module.rel, statement.module)
                for alias in statement.names:
                    local = alias.asname or alias.name
                    index.imports[(module.rel, local)] = (source_rel, alias.name)

        def _register(node, cls: str | None) -> None:
            qualname = node.name if cls is None else f"{cls}.{node.name}"
            info = FunctionInfo(
                qualname=qualname, name=node.name, module=module, node=node, cls=cls
            )
            index.functions.setdefault(node.name, []).append(info)
            index.by_qualname.setdefault(f"{module.rel}:{qualname}", info)

        for statement in module.tree.body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                _register(statement, None)
            elif isinstance(statement, ast.ClassDef):
                for item in statement.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        _register(item, statement.name)
                        if item.name == "__init__":
                            index.classes.setdefault(
                                statement.name,
                                index.by_qualname[
                                    f"{module.rel}:{statement.name}.__init__"
                                ],
                            )
    return index


# ----------------------------------------------------------------------
# the trace interpreter
# ----------------------------------------------------------------------
class UnresolvableTrace(Exception):
    """The interpreter cannot produce a faithful ordered trace."""

    def __init__(self, message: str, node: ast.AST, module: SourceModule):
        super().__init__(message)
        self.message = message
        self.node = node
        self.module = module


class _Return(Exception):
    """Internal control-flow signal: the traced path ended."""


def _call_tail(node: ast.Call) -> str | None:
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _is_party_test(test: ast.expr) -> tuple[bool, int] | None:
    """``(equality, value)`` for ``io.party == 0``-shaped tests."""
    if not (isinstance(test, ast.Compare) and len(test.ops) == 1):
        return None
    left, comparator = test.left, test.comparators[0]
    name = None
    if isinstance(left, ast.Attribute) and left.attr == "party":
        name = "party"
    elif isinstance(left, ast.Name) and left.id == "party":
        name = "party"
    if name is None or not (
        isinstance(comparator, ast.Constant) and comparator.value in (0, 1)
    ):
        return None
    if isinstance(test.ops[0], ast.Eq):
        return True, comparator.value
    if isinstance(test.ops[0], ast.NotEq):
        return False, comparator.value
    return None


class TraceExtractor:
    """Symbolic execution of one function under a party assumption.

    ``party=None`` traces joint (single-process) protocols, where no
    ``io.party`` test appears; ``party=0/1`` traces one half of a
    per-party function, statically taking the matching branch of every
    party test. Helper calls that resolve to project functions are
    inlined (depth-limited, recursion-guarded) with their string
    parameters bound from the call site, so labels survive pass-through
    helpers. Anything the interpreter cannot model faithfully on a path
    that communicates — an unresolvable loop over comm ops, branches
    whose arms disagree about communication — raises
    :class:`UnresolvableTrace` instead of guessing.
    """

    def __init__(self, index: ProjectIndex, party: int | None = None):
        self.index = index
        self.party = party

    # -- public ---------------------------------------------------------
    def trace(
        self, fn: FunctionInfo, bindings: dict[str, str] | None = None
    ) -> list[CommEvent]:
        merged = fn.default_bindings()
        if bindings:
            merged.update(bindings)
        return self._trace_function(fn, merged, stack=(fn.qualname,))

    # -- internals ------------------------------------------------------
    def _trace_function(
        self, fn: FunctionInfo, bindings: dict[str, str], stack: tuple[str, ...]
    ) -> list[CommEvent]:
        events: list[CommEvent] = []
        env = dict(bindings)
        try:
            self._trace_block(fn.node.body, fn, env, events, stack)
        except _Return:
            pass
        return events

    def _trace_block(self, body, fn, env, events, stack) -> None:
        for statement in body:
            self._trace_statement(statement, fn, env, events, stack)

    def _trace_statement(self, statement, fn, env, events, stack) -> None:
        module = fn.module
        if isinstance(statement, ast.Expr):
            self._emit_expr(statement.value, fn, env, events, stack)
        elif isinstance(statement, ast.Assign):
            self._emit_expr(statement.value, fn, env, events, stack)
            # Track local string constants: labels are often hoisted
            # (``key = "linear-masked-input"``) before the call.
            if len(statement.targets) == 1 and isinstance(
                statement.targets[0], ast.Name
            ):
                value = self._resolve_str(statement.value, fn, env)
                if value is not None:
                    env[statement.targets[0].id] = value
        elif isinstance(statement, (ast.AugAssign, ast.AnnAssign)):
            if getattr(statement, "value", None) is not None:
                self._emit_expr(statement.value, fn, env, events, stack)
        elif isinstance(statement, ast.Return):
            if statement.value is not None:
                self._emit_expr(statement.value, fn, env, events, stack)
            raise _Return()
        elif isinstance(statement, ast.Raise):
            if statement.exc is not None:
                self._emit_expr(statement.exc, fn, env, events, stack)
            raise _Return()
        elif isinstance(statement, ast.If):
            self._trace_if(statement, fn, env, events, stack)
        elif isinstance(statement, ast.For):
            self._trace_for(statement, fn, env, events, stack)
        elif isinstance(statement, ast.While):
            if self._block_communicates(statement.body, fn, stack):
                raise UnresolvableTrace(
                    "while-loop over communication ops — iteration count "
                    "is not static, the round schedule cannot be proven",
                    statement,
                    module,
                )
        elif isinstance(statement, ast.With):
            for item in statement.items:
                self._emit_expr(item.context_expr, fn, env, events, stack)
            self._trace_block(statement.body, fn, env, events, stack)
        elif isinstance(statement, ast.Try):
            # Handlers model error paths; the schedule is the happy path.
            self._trace_block(statement.body, fn, env, events, stack)
            self._trace_block(statement.orelse, fn, env, events, stack)
            self._trace_block(statement.finalbody, fn, env, events, stack)
        elif isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            pass  # nested definitions execute when called, not here
        elif isinstance(statement, (ast.Break, ast.Continue)):
            if isinstance(statement, ast.Break):
                raise UnresolvableTrace(
                    "break inside an unrolled loop — the static iteration "
                    "count would be a lie",
                    statement,
                    module,
                )
        # Pass/Import/Global/Assert/Delete: no communication.

    def _trace_if(self, statement: ast.If, fn, env, events, stack) -> None:
        test = _is_party_test(statement.test)
        if test is not None and self.party is not None:
            equality, value = test
            taken = (self.party == value) == equality
            branch = statement.body if taken else statement.orelse
            self._trace_block(branch, fn, env, events, stack)
            return
        # Unresolvable condition: both arms must agree about what they
        # communicate (``push_deferred`` vs ``push`` framing choices,
        # optional bias adds). Disagreement means the schedule depends on
        # runtime data the analyzer cannot see.
        body_events, body_returned = self._branch_trace(statement.body, fn, env, stack)
        else_events, else_returned = self._branch_trace(statement.orelse, fn, env, stack)
        if [e.key for e in body_events] != [e.key for e in else_events]:
            raise UnresolvableTrace(
                "if-branches disagree about communication "
                f"({[e.key for e in body_events]} vs {[e.key for e in else_events]}) "
                "and the condition is not a party test",
                statement,
                fn.module,
            )
        events.extend(body_events)
        if body_returned and else_returned:
            raise _Return()

    def _branch_trace(self, body, fn, env, stack) -> tuple[list[CommEvent], bool]:
        branch_events: list[CommEvent] = []
        branch_env = dict(env)
        try:
            self._trace_block(body, fn, branch_env, branch_events, stack)
        except _Return:
            env.update(branch_env)
            return branch_events, True
        env.update(branch_env)
        return branch_events, False

    def _trace_for(self, statement: ast.For, fn, env, events, stack) -> None:
        count = self._iteration_count(statement.iter, fn, env)
        if count is None:
            if self._block_communicates(statement.body, fn, stack):
                raise UnresolvableTrace(
                    f"loop over {ast.unparse(statement.iter)!r} communicates "
                    "but its iteration count cannot be resolved statically",
                    statement,
                    fn.module,
                )
            return
        self._emit_expr(statement.iter, fn, env, events, stack)
        for _ in range(min(count, _LOOP_UNROLL_LIMIT)):
            self._trace_block(statement.body, fn, env, events, stack)
        self._trace_block(statement.orelse, fn, env, events, stack)

    def _iteration_count(self, iterable: ast.expr, fn, env) -> int | None:
        if isinstance(iterable, (ast.Tuple, ast.List)):
            return len(iterable.elts)
        if isinstance(iterable, ast.Call) and isinstance(iterable.func, ast.Name):
            if iterable.func.id == "range":
                bounds = [_literal_value(a) for a in iterable.args]
                if all(isinstance(b, int) for b in bounds) and bounds:
                    return max(0, len(range(*bounds)))
            return None
        if isinstance(iterable, ast.Name):
            value = self.index.constant(fn.module, iterable.id)
            if isinstance(value, tuple):
                return len(value)
        return None

    def _block_communicates(self, body, fn, stack) -> bool:
        """Whether any comm call is reachable from this block (transitively)."""
        for statement in body:
            for node in ast.walk(statement):
                if not isinstance(node, ast.Call):
                    continue
                tail = _call_tail(node)
                if tail is None:
                    continue
                if tail in SEND_CALLS or tail in RECV_CALLS or tail in SWAP_CALLS:
                    return True
                if tail in ACCT_CALLS or tail in TICK_CALLS:
                    return True
                callee = self._resolvable_callee(node, fn)
                if (
                    callee is not None
                    and callee.qualname not in stack
                    and len(stack) < _INLINE_DEPTH_LIMIT
                    and self._block_communicates(
                        callee.node.body, callee, stack + (callee.qualname,)
                    )
                ):
                    return True
        return False

    # -- expressions ----------------------------------------------------
    def _emit_expr(self, expr: ast.expr, fn, env, events, stack) -> None:
        """Emit events of an expression in evaluation order (post-order)."""
        if expr is None:
            return
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self._emit_expr(child, fn, env, events, stack)
            elif isinstance(child, ast.keyword):
                self._emit_expr(child.value, fn, env, events, stack)
            elif isinstance(child, (ast.comprehension,)):
                self._emit_expr(child.iter, fn, env, events, stack)
        if isinstance(expr, ast.Call):
            self._emit_call(expr, fn, env, events, stack)

    def _emit_call(self, call: ast.Call, fn, env, events, stack) -> None:
        tail = _call_tail(call)
        if tail is None:
            return
        module = fn.module

        def event(kind: str, label: str) -> None:
            events.append(
                CommEvent(kind=kind, label=label, rel=module.rel, line=call.lineno)
            )

        if tail in SEND_CALLS:
            event("send", self._label(call, SEND_CALLS[tail], fn, env))
            return
        if tail in RECV_CALLS:
            event("recv", self._label(call, RECV_CALLS[tail], fn, env))
            return
        if tail in SWAP_CALLS:
            event("swap", self._label(call, SWAP_CALLS[tail], fn, env))
            return
        if tail in STAGE_CALLS:
            event("stage", self._label(call, STAGE_CALLS[tail], fn, env))
            return
        if tail in ACCT_CALLS:
            event("acct", self._label(call, ACCT_CALLS[tail], fn, env))
            return
        if tail in TICK_CALLS:
            event("tick", self._label(call, TICK_CALLS[tail], fn, env))
            return
        if tail == "next" and call.args:
            method = self._resolve_str(call.args[0], fn, env)
            if method in CONSUME_METHODS:
                event("consume", method)
                return
        if tail in CONSUME_METHODS and isinstance(call.func, ast.Attribute):
            event("consume", tail)
            return
        # Project-local helper: inline its trace with bound labels. Only
        # bare-name calls and ``self.method`` resolve — an attribute call
        # on a runtime object (``io.alloc_words``, ``np.subtract``) is a
        # method of *that object's* class, which static name matching
        # cannot identify safely.
        callee = self._resolvable_callee(call, fn)
        if callee is None or callee.qualname in stack:
            return
        if len(stack) >= _INLINE_DEPTH_LIMIT:
            raise UnresolvableTrace(
                f"call chain deeper than {_INLINE_DEPTH_LIMIT} at {tail!r}",
                call,
                module,
            )
        bindings = callee.default_bindings()
        params = callee.params
        # self/cls receivers are not in the call's positional args.
        offset = 1 if (callee.cls is not None and params and params[0] == "self") else 0
        for position, arg in enumerate(call.args):
            slot = position + offset
            if slot < len(params):
                value = self._resolve_str(arg, fn, env)
                if value is not None:
                    bindings[params[slot]] = value
        for keyword in call.keywords:
            if keyword.arg is not None:
                value = self._resolve_str(keyword.value, fn, env)
                if value is not None:
                    bindings[keyword.arg] = value
        events.extend(
            self._trace_function(callee, bindings, stack + (callee.qualname,))
        )

    def _resolvable_callee(self, call: ast.Call, fn) -> FunctionInfo | None:
        func = call.func
        if isinstance(func, ast.Name):
            return self.index.resolve_function(func.id, cls=None, module=fn.module)
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in ("self", "cls")
            and fn.cls is not None
        ):
            return self.index.resolve_function(
                func.attr, cls=fn.cls, module=fn.module
            )
        return None

    def _label(self, call: ast.Call, index: int, fn, env) -> str:
        for keyword in call.keywords:
            if keyword.arg == "label":
                return self._label_value(keyword.value, fn, env)
        if len(call.args) > index:
            return self._label_value(call.args[index], fn, env)
        return "<missing>"

    def _label_value(self, expr: ast.expr, fn, env) -> str:
        value = self._resolve_str(expr, fn, env)
        if value is not None:
            return value
        # Symbolic but *stable*: both halves of one function produce the
        # same token for the same unresolved expression, so duality still
        # holds through pass-through label parameters.
        return f"<{ast.unparse(expr)}>"

    def _resolve_str(self, expr: ast.expr, fn, env) -> str | None:
        if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
            return expr.value
        if isinstance(expr, ast.Name):
            if expr.id in env:
                return env[expr.id]
            value = self.index.constant(fn.module, expr.id)
            if isinstance(value, str):
                return value
        return None


# ----------------------------------------------------------------------
# order-free collection (request-driven control flow)
# ----------------------------------------------------------------------
def collect_events(
    index: ProjectIndex, fn: FunctionInfo, max_depth: int = 6
) -> list[CommEvent]:
    """Every comm call reachable from ``fn`` through same-module helpers.

    The dealer RPC loop dispatches on request payloads — its per-branch
    ordering is runtime data, but its *label vocabulary* is static. This
    walks the function and its same-module callees (depth-bounded,
    recursion-guarded) and returns every movement/accounting event, in
    source order per function, without claiming any cross-branch order.
    """
    events: list[CommEvent] = []
    extractor = TraceExtractor(index, party=None)
    seen: set[str] = set()

    def visit(info: FunctionInfo, depth: int) -> None:
        if info.qualname in seen or depth > max_depth:
            return
        seen.add(info.qualname)
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            tail = _call_tail(node)
            if tail is None:
                continue
            for table, kind in (
                (SEND_CALLS, "send"),
                (RECV_CALLS, "recv"),
                (SWAP_CALLS, "swap"),
                (ACCT_CALLS, "acct"),
                (TICK_CALLS, "tick"),
            ):
                if tail in table:
                    events.append(
                        CommEvent(
                            kind=kind,
                            label=extractor._label(node, table[tail], info, {}),
                            rel=info.module.rel,
                            line=node.lineno,
                        )
                    )
                    break
            else:
                callee = extractor._resolvable_callee(node, info)
                if callee is not None and callee.module.rel == info.module.rel:
                    visit(callee, depth + 1)

    visit(fn, 0)
    return events
