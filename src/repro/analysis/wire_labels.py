"""Wire-label accounting pass: every frame and byte count carries a real label.

The cost model (``costs.py``) and the runtime wire stats reconcile
per-label: a ``push`` or ``exchange`` whose label is misspelled, or
invented without a matching table entry, silently leaks traffic out of
the ``bytes_match`` reconciliation — the gate only sees labels it knows
about, and only on paths the tests execute. This pass closes that gap
statically: every accounting/movement call site in the tree must carry a
label that resolves to the registry ``costs.known_wire_labels()``.

Rules:

``wire/missing-label``
    An audited sink called without a label (or with ``""``). ``exchange``
    / ``send`` / ``tick_round`` default the label to ``""``, which the
    accounting tables treat as an anonymous bucket — never acceptable on
    a protocol path.

``wire/unknown-label``
    A literal label that is not in ``known_wire_labels()``. The fix is
    either the typo or a deliberate registry addition in ``costs.py`` —
    both reviewed in the same diff as the call site.

``wire/unresolvable-label``
    A label expression the analyzer cannot resolve to literals: not a
    string constant, not a pass-through function parameter (the caller's
    literal is audited instead), and not a local/module constant assigned
    from literals. Computed labels defeat the static reconciliation; hoist
    them into constants or suppress with a justification.

Scope: everything except the transport implementations themselves
(``mpc/transport.py``, ``mpc/shm.py``, ``mpc/chaos.py``) — they *define*
the sinks and forward already-validated labels from frame headers.
"""

from __future__ import annotations

import ast

from .core import Finding, SourceModule, emit

__all__ = ["NAME", "EXCLUDE", "run", "known_labels"]

NAME = "wire"

# Infrastructure that implements the sinks; its internal label flow is
# frame-header forwarding, validated at the producing call sites.
EXCLUDE = ("mpc/transport.py", "mpc/shm.py", "mpc/chaos.py")

# sink name -> positional index of the label argument (after self).
_SINKS = {
    "push": 1,
    "push_deferred": 1,
    "push_segments": 1,
    "swap": 1,
    "swap_segments": 1,
    "stage": 1,
    "pull": 0,
    "tick_round": 0,
    "exchange": 1,
    "send": 2,
}


def known_labels() -> frozenset:
    """The registry, imported lazily so the analyzer stays import-light.

    ``costs`` pulls in numpy; deferring the import keeps ``c2pi audit``
    usable even while the mpc package itself is mid-refactor.
    """
    from repro.mpc.costs import known_wire_labels

    return known_wire_labels()


def _label_expr(node: ast.Call, sink: str) -> ast.expr | None:
    for keyword in node.keywords:
        if keyword.arg == "label":
            return keyword.value
    index = _SINKS[sink]
    if len(node.args) > index:
        return node.args[index]
    return None


def _literal_values(
    expr: ast.expr,
    params: set[str],
    consts: dict[str, list[str] | None],
) -> list[str] | None:
    """All string literals ``expr`` can evaluate to, or None if unresolvable.

    A pass-through parameter resolves to the empty list: nothing to check
    here, the caller's argument gets audited at its own call site.
    """
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return [expr.value]
    if isinstance(expr, ast.Name):
        if expr.id in params:
            return []
        if expr.id in consts:
            return consts[expr.id]
        return None
    if isinstance(expr, ast.IfExp):
        left = _literal_values(expr.body, params, consts)
        right = _literal_values(expr.orelse, params, consts)
        if left is None or right is None:
            return None
        return left + right
    return None


def _const_strings(value: ast.expr) -> list[str] | None:
    if isinstance(value, ast.Constant) and isinstance(value.value, str):
        return [value.value]
    if isinstance(value, ast.IfExp):
        left = _const_strings(value.body)
        right = _const_strings(value.orelse)
        if left is not None and right is not None:
            return left + right
    return None


class _Auditor(ast.NodeVisitor):
    def __init__(
        self,
        module: SourceModule,
        registry: frozenset,
        findings: list[Finding],
        module_consts: dict[str, list[str] | None],
    ):
        self.module = module
        self.registry = registry
        self.findings = findings
        self.params: list[set[str]] = []
        self.consts: list[dict[str, list[str] | None]] = [module_consts]

    def _flat_params(self) -> set[str]:
        names: set[str] = set()
        for scope in self.params:
            names |= scope
        return names

    def _flat_consts(self) -> dict[str, list[str] | None]:
        merged: dict[str, list[str] | None] = {}
        for scope in self.consts:
            merged.update(scope)
        return merged

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        arg_names = {
            arg.arg
            for arg in (
                node.args.posonlyargs
                + node.args.args
                + node.args.kwonlyargs
                + ([node.args.vararg] if node.args.vararg else [])
                + ([node.args.kwarg] if node.args.kwarg else [])
            )
        }
        self.params.append(arg_names)
        self.consts.append({})
        self.generic_visit(node)
        self.consts.pop()
        self.params.pop()

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Assign(self, node: ast.Assign) -> None:
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            self.consts[-1][node.targets[0].id] = _const_strings(node.value)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        self.generic_visit(node)
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in _SINKS:
            return
        sink = func.attr
        expr = _label_expr(node, sink)
        if expr is None:
            emit(
                self.findings,
                self.module,
                "wire/missing-label",
                node,
                f"{sink}() without a label — unlabeled traffic falls into the "
                "anonymous bucket and escapes per-label reconciliation",
            )
            return
        values = _literal_values(expr, self._flat_params(), self._flat_consts())
        if values is None:
            emit(
                self.findings,
                self.module,
                "wire/unresolvable-label",
                node,
                f"{sink}() label {ast.unparse(expr)!r} cannot be statically "
                "resolved — hoist it into a string constant so the registry "
                "check can see it",
            )
            return
        for value in values:
            if value == "":
                emit(
                    self.findings,
                    self.module,
                    "wire/missing-label",
                    node,
                    f'{sink}() with label "" — unlabeled traffic escapes '
                    "per-label reconciliation",
                )
            elif value not in self.registry:
                emit(
                    self.findings,
                    self.module,
                    "wire/unknown-label",
                    node,
                    f"{sink}() label {value!r} is not registered in "
                    "costs.known_wire_labels() — fix the typo or register "
                    "the label with its traffic tier",
                )


def run(modules: list[SourceModule]) -> list[Finding]:
    registry = known_labels()
    findings: list[Finding] = []
    for module in modules:
        if module.in_scope(EXCLUDE):
            continue
        module_consts: dict[str, list[str] | None] = {}
        for statement in module.tree.body:
            if isinstance(statement, ast.Assign) and len(statement.targets) == 1:
                target = statement.targets[0]
                if isinstance(target, ast.Name):
                    module_consts[target.id] = _const_strings(statement.value)
        auditor = _Auditor(module, registry, findings, module_consts)
        auditor.visit(module.tree)
    return findings
