"""Interprocedural secret-taint pass: secrets stay out of strings and logs.

The :mod:`~repro.analysis.secrecy` pass checks the *provenance* of wire
payloads function-locally; this pass tracks the *values themselves* —
secret shares, dealer rng state and seeds, keys, unsealed bundle
payloads — forward through assignments, returns and project-local call
hops, to the three places a secret most plausibly escapes in practice:

``taint/secret-in-exception``
    A raised exception interpolates a secret-derived value (f-string,
    ``%``, ``.format``, ``str``/``repr`` — any expression shape).
    Exception messages end up in logs, tracebacks and crash reports on
    *both* sides of the deployment.

``taint/secret-in-log``
    ``print`` / ``logging`` called with a secret-derived argument.
    (The secrecy pass already bans printing in the protocol layer
    wholesale; this rule follows the tainted value anywhere in scope.)

``taint/secret-to-wire``
    A payload-moving send whose argument is secret-derived and not
    produced by a sanctioned masking chain (``stage``, sealed bundles,
    share splitters, pooled masked frames) — including values laundered
    through a helper's return value, which the per-function secrecy
    pass cannot see.

The analysis is a two-phase abstract interpretation over *origin sets*:

1. a fixpoint over per-function summaries — which parameters flow to
   the return value, whether the return is itself a source, whether
   every return is a sanctioned producer — plus two global facts:
   object *fields* assigned secret-derived values (by attribute name:
   constructing ``_Stream(key, seed)`` taints ``.key`` reads
   everywhere), and parameters that *receive* tainted arguments at some
   call site;
2. a sink walk over in-scope functions with the converged state.

Deliberately not modeled (see DESIGN.md §13): ``send_obj`` (the RPC
control plane — its dict payloads are audited by hand and by the
secrecy pass's sink rules), ``recv_obj`` as a source (control messages
are public by construction), taint through ``out=`` in-place writes
(masked-frame discipline is the secrecy pass's job), and ``except``
handler variables (exception objects are not sources).
"""

from __future__ import annotations

import ast

from .core import Finding, SourceModule, dotted_name, emit
from .dataflow import FunctionInfo, ProjectIndex, build_index
from .secrecy import (
    SCOPE,
    _ALLOCATORS,
    _SEALED_CALLS,
    _SHARE_SPLITTERS,
    _STAGING_CALLS,
    _TRUSTED_PRIMITIVES,
    _WRAPPERS,
    _is_alloc_chain,
)

__all__ = ["NAME", "SCOPE", "run"]

NAME = "taint"

#: Calls whose result IS secret material: raw bundle blobs off the
#: wire and the record/bundle unpackers. ``material.next("method")``
#: (a dealer-material draw) and ``dealer.state()`` (the serialized rng
#: state) are also sources but need shape checks — the builtin
#: ``next(iterator)`` must not match — so they are handled in
#: :meth:`_Analyzer._call_origins`.
_SOURCE_CALLS = {
    "recv_blob",
    "_unpack_record",
    "unpack_party_bundle",
}

#: Parameter names that carry secret values by the repo's own naming
#: conventions. Deliberately absent: ``fingerprint`` (a public program
#: hash), ``seq``/``batch`` (public stream positions), ``label``,
#: ``bits`` (public bit *width*), ``request``/``reply`` (control
#: plane).
_SECRET_PARAMS = {
    "x",
    "y",
    "a",
    "b",
    "share",
    "shares",
    "secret",
    "mask",
    "masks",
    "triple",
    "triples",
    "material",
    "correlation",
    "dabit",
    "dabits",
    "record",
    "blob",
    "blob0",
    "blob1",
    "session_seed",
    "dealer_seed",
    "z_low",
    "r_words",
}

#: Attribute reads that *declassify*: shapes, dtypes and sizes of a
#: secret array are public metadata (the cost model broadcasts them),
#: and a stream's sequence position is public protocol state (the
#: dealer sends it in control replies).
_DECLASSIFIED_ATTRS = {
    "shape",
    "dtype",
    "nbytes",
    "size",
    "ndim",
    "itemsize",
    "name",
    "next_seq",
}

#: Calls that declassify their argument entirely.
_DECLASSIFIERS = {"len", "type", "isinstance", "id", "hex_digest"}

_LOG_SINKS = {"print"}
_LOG_MODULES = {"logging", "logger", "log"}

#: Payload-moving sinks (payload is argument 0). ``send_obj`` is the
#: RPC control plane and is deliberately excluded — see the module
#: docstring.
_WIRE_SINKS = {
    "push",
    "push_deferred",
    "push_segments",
    "swap",
    "swap_segments",
    "send_blob",
}

_SANCTIONED_PRODUCERS = _STAGING_CALLS | _SEALED_CALLS | _SHARE_SPLITTERS

_MAX_ITERATIONS = 10
_SNIPPET_LIMIT = 60


def _call_tail(node: ast.Call) -> str | None:
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _snippet(expr: ast.expr) -> str:
    text = ast.unparse(expr)
    if len(text) > _SNIPPET_LIMIT:
        text = text[: _SNIPPET_LIMIT - 3] + "..."
    return text


def _all_params(info: FunctionInfo) -> list[str]:
    args = info.node.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return names


class _Summary:
    """What a function does with taint, as seen from a call site."""

    __slots__ = ("return_origins", "returns_sanctioned", "saw_return")

    def __init__(self):
        self.return_origins: set[str] = set()
        self.returns_sanctioned = True
        self.saw_return = False

    def key(self) -> tuple:
        return (
            frozenset(self.return_origins),
            self.returns_sanctioned,
            self.saw_return,
        )


class _Analyzer:
    """Origin-set abstract interpretation over the whole scanned tree.

    An *origin set* is the set of places a value may derive from: its
    own function's parameter names, plus ``"*"`` for "a source call or
    tainted field was read". A value is tainted when its origins
    intersect the function's tainted parameters (secret-named or
    call-site-propagated) or contain ``"*"``.
    """

    def __init__(self, index: ProjectIndex):
        self.index = index
        self.summaries: dict[str, _Summary] = {}
        self.param_taint: dict[str, set[str]] = {}
        self.tainted_fields: set[str] = set()
        self.changed = False

    # -- identity -------------------------------------------------------
    @staticmethod
    def _key(info: FunctionInfo) -> str:
        return f"{info.module.rel}:{info.qualname}"

    def _tainted_params(self, info: FunctionInfo) -> set[str]:
        tainted = {"*"}
        tainted.update(p for p in _all_params(info) if p in _SECRET_PARAMS)
        tainted.update(self.param_taint.get(self._key(info), set()))
        return tainted

    def _is_tainted(self, origins: set[str], info: FunctionInfo) -> bool:
        return bool(origins & self._tainted_params(info))

    # -- callee resolution ---------------------------------------------
    def _callee(self, call: ast.Call, info: FunctionInfo) -> FunctionInfo | None:
        func = call.func
        if isinstance(func, ast.Name):
            resolved = self.index.resolve_function(
                func.id, cls=None, module=info.module
            )
            if resolved is not None:
                return resolved
            return self.index.classes.get(func.id)
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in ("self", "cls")
            and info.cls is not None
        ):
            return self.index.resolve_function(
                func.attr, cls=info.cls, module=info.module
            )
        return None

    def _propagate_args(
        self, call: ast.Call, callee: FunctionInfo, info: FunctionInfo, env
    ) -> None:
        """Record tainted arguments arriving at a project function."""
        params = callee.params
        offset = 1 if params and params[0] in ("self", "cls") else 0
        key = self._key(callee)
        incoming = self.param_taint.setdefault(key, set())
        for position, arg in enumerate(call.args):
            slot = position + offset
            if slot < len(params) and self._is_tainted(
                self._origins(arg, info, env), info
            ):
                if params[slot] not in incoming:
                    incoming.add(params[slot])
                    self.changed = True
        for keyword in call.keywords:
            if keyword.arg is not None and self._is_tainted(
                self._origins(keyword.value, info, env), info
            ):
                if keyword.arg not in incoming:
                    incoming.add(keyword.arg)
                    self.changed = True

    # -- origins --------------------------------------------------------
    def _origins(self, expr, info: FunctionInfo, env) -> set[str]:
        if expr is None or isinstance(expr, ast.Constant):
            return set()
        if isinstance(expr, ast.Name):
            return set(env.get(expr.id, ()))
        if isinstance(expr, ast.Attribute):
            if expr.attr in _DECLASSIFIED_ATTRS:
                return set()
            if expr.attr in self.tainted_fields:
                return {"*"}
            return self._origins(expr.value, info, env)
        if isinstance(expr, ast.Lambda):
            return set()
        if isinstance(expr, ast.Call):
            return self._call_origins(expr, info, env)
        origins: set[str] = set()
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                origins |= self._origins(child, info, env)
            elif isinstance(child, ast.keyword):
                origins |= self._origins(child.value, info, env)
            elif isinstance(child, ast.comprehension):
                origins |= self._origins(child.iter, info, env)
        return origins

    def _call_origins(self, call: ast.Call, info: FunctionInfo, env) -> set[str]:
        tail = _call_tail(call)
        if tail in _DECLASSIFIERS:
            return set()
        if tail in _SOURCE_CALLS:
            return {"*"}
        if isinstance(call.func, ast.Attribute):
            # ``material.next("bit_triples")``: a dealer-material draw.
            # The first-argument shape check keeps the builtin
            # ``next(iterator)`` (a bare Name call) and unrelated
            # ``.next()`` methods out.
            if (
                tail == "next"
                and call.args
                and isinstance(call.args[0], ast.Constant)
                and isinstance(call.args[0].value, str)
            ):
                return {"*"}
            # ``dealer.state()``: the serialized rng state.
            if tail == "state" and not call.args and not call.keywords:
                return {"*"}
        callee = self._callee(call, info)
        if callee is not None:
            self._propagate_args(call, callee, info, env)
            if callee.name == "__init__":
                # A project constructor returns an untainted *object*;
                # the secrets it swallows resurface as tainted fields.
                return set()
            summary = self.summaries.get(self._key(callee))
            if summary is not None:
                origins: set[str] = set()
                params = callee.params
                offset = 1 if params and params[0] in ("self", "cls") else 0
                flows = summary.return_origins
                if "*" in flows:
                    origins.add("*")
                for position, arg in enumerate(call.args):
                    slot = position + offset
                    if slot < len(params) and params[slot] in flows:
                        origins |= self._origins(arg, info, env)
                for keyword in call.keywords:
                    if keyword.arg in flows:
                        origins |= self._origins(keyword.value, info, env)
                return origins
            return set()
        # Unknown call: taint flows through arguments and — for method
        # calls — through the receiver (``tainted.tobytes()``).
        origins = set()
        for arg in call.args:
            origins |= self._origins(arg, info, env)
        for keyword in call.keywords:
            origins |= self._origins(keyword.value, info, env)
        if isinstance(call.func, ast.Attribute):
            origins |= self._origins(call.func.value, info, env)
        return origins

    # -- sanctioned-producer check -------------------------------------
    def _unwrap(self, expr: ast.expr) -> ast.expr:
        for _ in range(12):
            if isinstance(expr, ast.Call):
                tail = _call_tail(expr)
                if tail == "cast" and isinstance(expr.func, ast.Attribute):
                    expr = expr.func.value
                    continue
                if tail in _WRAPPERS and expr.args:
                    expr = expr.args[0]
                    continue
            return expr
        return expr

    def _is_sanctioned(self, expr: ast.expr, info: FunctionInfo) -> bool:
        resolved = self._unwrap(expr)
        if not isinstance(resolved, ast.Call):
            return False
        tail = _call_tail(resolved)
        if tail in _SANCTIONED_PRODUCERS or tail in _ALLOCATORS:
            return True
        if _is_alloc_chain(resolved):
            return True
        callee = self._callee(resolved, info)
        if callee is not None:
            summary = self.summaries.get(self._key(callee))
            if summary is not None and summary.saw_return:
                return summary.returns_sanctioned
        return False

    # -- function evaluation -------------------------------------------
    def evaluate(
        self,
        info: FunctionInfo,
        findings: list[Finding] | None = None,
    ) -> _Summary:
        env = {p: {p} for p in _all_params(info)}
        summary = _Summary()
        reported: set[int] = set()
        self._walk_block(info.node.body, info, env, summary, findings, reported)
        if not summary.saw_return:
            summary.returns_sanctioned = False
        key = self._key(info)
        previous = self.summaries.get(key)
        if previous is None or previous.key() != summary.key():
            self.summaries[key] = summary
            self.changed = True
        return summary

    def _walk_block(self, body, info, env, summary, findings, reported) -> None:
        for statement in body:
            self._walk_statement(statement, info, env, summary, findings, reported)

    def _walk_statement(self, stmt, info, env, summary, findings, reported) -> None:
        if isinstance(stmt, ast.Expr):
            self._visit_expr(stmt.value, info, env, findings, reported)
        elif isinstance(stmt, ast.Assign):
            origins = self._visit_expr(stmt.value, info, env, findings, reported)
            for target in stmt.targets:
                self._bind_target(target, origins, info, env)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                origins = self._visit_expr(stmt.value, info, env, findings, reported)
                self._bind_target(stmt.target, origins, info, env)
        elif isinstance(stmt, ast.AugAssign):
            origins = self._visit_expr(stmt.value, info, env, findings, reported)
            if isinstance(stmt.target, ast.Name):
                env.setdefault(stmt.target.id, set())
                env[stmt.target.id] = env[stmt.target.id] | origins
            else:
                self._bind_target(stmt.target, origins, info, env)
        elif isinstance(stmt, ast.Return):
            summary.saw_return = True
            if stmt.value is None:
                summary.returns_sanctioned = False
            else:
                origins = self._visit_expr(stmt.value, info, env, findings, reported)
                summary.return_origins |= origins
                if not self._is_sanctioned(stmt.value, info):
                    summary.returns_sanctioned = False
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                origins = self._visit_expr(stmt.exc, info, env, findings, reported)
                if (
                    findings is not None
                    and id(stmt) not in reported
                    and self._is_tainted(origins, info)
                ):
                    reported.add(id(stmt))
                    emit(
                        findings,
                        info.module,
                        "taint/secret-in-exception",
                        stmt,
                        f"exception raised in {info.qualname!r} interpolates "
                        f"a secret-derived value ({_snippet(stmt.exc)}) — "
                        "redact to shapes/dtypes/labels",
                    )
        elif isinstance(stmt, ast.If):
            self._visit_expr(stmt.test, info, env, findings, reported)
            self._walk_branches(
                (stmt.body, stmt.orelse), info, env, summary, findings, reported
            )
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            origins = self._visit_expr(stmt.iter, info, env, findings, reported)
            self._bind_target(stmt.target, origins, info, env)
            # Twice: the second pass sees loop-carried taint.
            for _ in range(2):
                self._walk_block(stmt.body, info, env, summary, findings, reported)
            self._walk_block(stmt.orelse, info, env, summary, findings, reported)
        elif isinstance(stmt, ast.While):
            self._visit_expr(stmt.test, info, env, findings, reported)
            for _ in range(2):
                self._walk_block(stmt.body, info, env, summary, findings, reported)
            self._walk_block(stmt.orelse, info, env, summary, findings, reported)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                origins = self._visit_expr(
                    item.context_expr, info, env, findings, reported
                )
                if item.optional_vars is not None:
                    self._bind_target(item.optional_vars, origins, info, env)
            self._walk_block(stmt.body, info, env, summary, findings, reported)
        elif isinstance(stmt, ast.Try):
            self._walk_block(stmt.body, info, env, summary, findings, reported)
            for handler in stmt.handlers:
                if handler.name is not None:
                    env[handler.name] = set()  # exception objects: not sources
                self._walk_block(handler.body, info, env, summary, findings, reported)
            self._walk_block(stmt.orelse, info, env, summary, findings, reported)
            self._walk_block(stmt.finalbody, info, env, summary, findings, reported)
        elif isinstance(stmt, ast.Assert):
            self._visit_expr(stmt.test, info, env, findings, reported)
            if stmt.msg is not None:
                origins = self._visit_expr(stmt.msg, info, env, findings, reported)
                if (
                    findings is not None
                    and id(stmt) not in reported
                    and self._is_tainted(origins, info)
                ):
                    reported.add(id(stmt))
                    emit(
                        findings,
                        info.module,
                        "taint/secret-in-exception",
                        stmt,
                        f"assert message in {info.qualname!r} interpolates a "
                        f"secret-derived value ({_snippet(stmt.msg)})",
                    )
        elif isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            pass  # nested definitions are separate analysis units
        # Pass / Import / Global / Delete / Break / Continue: no flow.

    def _walk_branches(
        self, branches, info, env, summary, findings, reported
    ) -> None:
        """Branches run on copies; the join is a per-name union."""
        merged: dict[str, set[str]] = {}
        for body in branches:
            branch_env = {name: set(origins) for name, origins in env.items()}
            self._walk_block(body, info, branch_env, summary, findings, reported)
            for name, origins in branch_env.items():
                merged.setdefault(name, set()).update(origins)
        env.clear()
        env.update(merged)

    def _bind_target(self, target, origins: set[str], info, env) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = set(origins)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                # Coarse: one tainted element taints every unpacked name.
                self._bind_target(element, origins, info, env)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, origins, info, env)
        elif isinstance(target, ast.Attribute):
            # Field taint is by attribute name, recorded only for
            # ``self.X = ...`` stores in *scoped* modules — object
            # construction is how secrets land in fields, and the
            # secret-bearing classes live where the secrets do. Writes
            # elsewhere (a model builder storing layer widths, the
            # analyzer storing AST nodes) must not poison every ``.key``
            # or ``.program`` read in the protocol layer.
            if (
                isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and info.module.in_scope(SCOPE)
                and self._is_tainted(origins, info)
            ):
                if target.attr not in self.tainted_fields:
                    self.tainted_fields.add(target.attr)
                    self.changed = True
        # Subscript stores: container taint is out of scope (out= and
        # frame writes belong to the secrecy pass).

    # -- sinks ----------------------------------------------------------
    def _visit_expr(self, expr, info, env, findings, reported) -> set[str]:
        origins = self._origins(expr, info, env)
        if findings is not None and expr is not None:
            for node in ast.walk(expr):
                if isinstance(node, ast.Call) and id(node) not in reported:
                    if self._check_call_sinks(node, info, env, findings):
                        reported.add(id(node))
        return origins

    def _check_call_sinks(self, call: ast.Call, info, env, findings) -> bool:
        name = dotted_name(call.func)
        if name in _LOG_SINKS or (
            name is not None and name.split(".")[0] in _LOG_MODULES
        ):
            arguments = list(call.args) + [k.value for k in call.keywords]
            if any(
                self._is_tainted(self._origins(a, info, env), info)
                for a in arguments
            ):
                emit(
                    findings,
                    info.module,
                    "taint/secret-in-log",
                    call,
                    f"{name}() in {info.qualname!r} receives a secret-derived "
                    f"argument ({_snippet(call)}) — logging live secret "
                    "material",
                )
                return True
            return False
        tail = _call_tail(call)
        if (
            tail in _WIRE_SINKS
            and isinstance(call.func, ast.Attribute)
            and call.args
            and info.name not in _TRUSTED_PRIMITIVES
        ):
            payload = call.args[0]
            if not self._is_sanctioned(payload, info) and self._is_tainted(
                self._origins(payload, info, env), info
            ):
                emit(
                    findings,
                    info.module,
                    "taint/secret-to-wire",
                    call,
                    f"{tail}() in {info.qualname!r} ships a secret-derived "
                    f"payload ({_snippet(payload)}) that bypasses the "
                    "sanctioned masking chains",
                )
                return True
        return False


def _tree_functions(index: ProjectIndex) -> list[FunctionInfo]:
    return list(index.by_qualname.values())


def run(modules: list[SourceModule]) -> list[Finding]:
    index = build_index(modules)
    analyzer = _Analyzer(index)
    functions = _tree_functions(index)
    # Phase 1: converge summaries, tainted fields and call-site taint.
    for _ in range(_MAX_ITERATIONS):
        analyzer.changed = False
        for info in functions:
            analyzer.evaluate(info)
        if not analyzer.changed:
            break
    # Phase 2: sink walk over the secrecy scope with converged state.
    findings: list[Finding] = []
    for info in functions:
        if info.module.in_scope(SCOPE):
            analyzer.evaluate(info, findings=findings)
    return findings
