"""Round-schedule duality pass: the two halves of every protocol agree.

A two-process protocol wedges (or silently desynchronizes) exactly when
its halves disagree about the communication *schedule*: party 0 pushes a
label party 1 never pulls, both halves block receiving first, one half
runs a round the other skipped, or the material consumed per round stops
matching the openings the cost model charges for. All of these are
static properties of the halves' code — this pass extracts each half's
ordered communication trace with the :mod:`~repro.analysis.dataflow`
interpreter and checks them against each other, before any process is
spawned.

Three families of code are checked:

* **party halves** (``mpc/protocols/party*.py``) — each function is
  traced under ``party=0`` and ``party=1`` and the two movement traces
  are run through a queue-based *duality simulation*: sends are
  non-blocking (they enter the in-flight queue toward the peer),
  receives consume the matching queued send, swaps pair with the peer's
  swap. The simulation flags the wedge class it hits;
* **joint protocols** (``comparison.py`` / ``beaver.py`` / ``linear.py``)
  — single-process code whose ``channel`` accounting must still match
  the dealer material it consumes;
* **dealer RPC** (``serve/dealer_service.py``) — the client stub and the
  server loop are request-driven, so only *label-level* duality is
  meaningful: every label the client sends must be received by the
  server and vice versa, and the connection handshake must open with a
  matched send/receive pair.

The cost cross-check closes the loop with :mod:`repro.mpc.costs`: one
consumed dealer-material item opens exactly one round of that method's
wire label (``costs.method_wire_labels()``), so a function that consumes
``bit_triples`` three times must account three ``and-open`` rounds — in
both implementations. The cost model can no longer drift from the code.

Rules:

``schedule/missing-receive``
    One half sends a label the other half never receives.

``schedule/label-mismatch``
    A receive (or swap) pairs with a peer message of a different label —
    the deserializer on one side will read the wrong frame. On the
    dealer RPC: a label sent/expected on one side with no counterpart.

``schedule/deadlock``
    Both halves block receiving with nothing in flight (or one half
    receives after the peer's trace is exhausted) — the deployed
    processes would hang, not crash.

``schedule/round-drift``
    The same label is sent and received in different round order, or the
    two halves' accounting/tick/material counters disagree.

``schedule/cost-drift``
    Consumed dealer material does not match the opened rounds of its
    wire label per ``costs.method_wire_labels()``.

``schedule/unresolvable-trace``
    The interpreter cannot extract a faithful ordered trace (data-driven
    loop over communication, non-party branch whose arms disagree).
    An unprovable schedule is a finding, not a silent skip.
"""

from __future__ import annotations

import ast
from collections import Counter

from .core import Finding, SourceModule, emit
from .dataflow import (
    MOVEMENT_KINDS,
    CommEvent,
    FunctionInfo,
    ProjectIndex,
    TraceExtractor,
    UnresolvableTrace,
    build_index,
    collect_events,
)

__all__ = [
    "NAME",
    "PARTY_SCOPE",
    "JOINT_SCOPE",
    "DEALER_SCOPE",
    "run",
    "extract_schedule",
    "method_labels",
]

NAME = "schedule"

#: Per-party protocol halves: every function is a (party-0, party-1) pair.
PARTY_SCOPE = ("mpc/protocols/party",)
#: Joint (single-process) protocols: material/accounting symmetry only.
JOINT_SCOPE = (
    "mpc/protocols/comparison",
    "mpc/protocols/beaver",
    "mpc/protocols/linear",
)
#: The dealer RPC: label-set duality between client stub and server loop.
DEALER_SCOPE = ("serve/dealer_service",)

_SIMULATION_FUEL = 10_000


def method_labels() -> dict[str, str]:
    """Dealer method -> wire label, imported lazily (costs pulls numpy)."""
    from repro.mpc.costs import method_wire_labels

    return method_wire_labels()


def _anchor(line: int) -> ast.AST:
    """A synthetic node carrying only a location, for emit()/suppression."""
    node = ast.Pass()
    node.lineno = line
    node.end_lineno = line
    return node


class _Emitter:
    """emit() with pass-wide fingerprint dedup.

    The same defect often surfaces under both party assumptions (an
    unresolvable loop raises identically for party 0 and party 1);
    fingerprint-level dedup keeps it one finding.
    """

    def __init__(self, findings: list[Finding]):
        self.findings = findings
        self._seen: set[tuple[str, str, str]] = set()

    def __call__(
        self, module: SourceModule, rule: str, node: ast.AST, message: str
    ) -> None:
        before = len(self.findings)
        emit(self.findings, module, rule, node, message)
        if len(self.findings) > before:
            fingerprint = self.findings[-1].fingerprint
            if fingerprint in self._seen:
                self.findings.pop()
            else:
                self._seen.add(fingerprint)


# ----------------------------------------------------------------------
# the duality simulation
# ----------------------------------------------------------------------
def _simulate(
    fn: FunctionInfo,
    module: SourceModule,
    moves0: list[CommEvent],
    moves1: list[CommEvent],
    report: _Emitter,
) -> None:
    """Run both halves' movement traces against each other.

    Sends never block; a receive consumes the oldest in-flight send of
    its label (out-of-order consumption is round drift); a swap is a
    send half (eagerly in flight) plus a receive half. When neither side
    can progress, the stuck pattern names the wedge.
    """
    node = _anchor(fn.node.lineno)
    q01: list[CommEvent] = []  # party 0 -> party 1 in flight
    q10: list[CommEvent] = []
    i = j = 0
    swap_sent: set[tuple[int, int]] = set()
    deadlocked = False

    def head(events: list[CommEvent], k: int) -> CommEvent | None:
        return events[k] if k < len(events) else None

    def try_recv(event: CommEvent, queue: list[CommEvent], receiver: int) -> bool:
        for k, send in enumerate(queue):
            if send.label == event.label:
                if k > 0:
                    report(
                        module,
                        "schedule/round-drift",
                        node,
                        f"{fn.qualname}: party {receiver} receives "
                        f"{event.label!r} while {queue[0].label!r} is still "
                        "in flight ahead of it — the halves order the same "
                        "rounds differently",
                    )
                del queue[k]
                return True
        return False

    for _fuel in range(_SIMULATION_FUEL):
        moved = False
        while (a := head(moves0, i)) is not None and a.kind == "send":
            q01.append(a)
            i += 1
            moved = True
        while (b := head(moves1, j)) is not None and b.kind == "send":
            q10.append(b)
            j += 1
            moved = True
        a, b = head(moves0, i), head(moves1, j)
        if a is None and b is None:
            break
        # A swap's outgoing half is as non-blocking as a push.
        if a is not None and a.kind == "swap" and (0, i) not in swap_sent:
            q01.append(a)
            swap_sent.add((0, i))
            moved = True
        if b is not None and b.kind == "swap" and (1, j) not in swap_sent:
            q10.append(b)
            swap_sent.add((1, j))
            moved = True
        progressed = False
        if a is not None and try_recv(a, q10, receiver=0):
            i += 1
            progressed = True
        elif b is not None and try_recv(b, q01, receiver=1):
            j += 1
            progressed = True
        if progressed or moved:
            continue
        # Nobody can move: name the wedge and (for mismatches) pair the
        # offending events off so one defect yields one finding.
        if a is not None and b is not None and not q01 and not q10:
            report(
                module,
                "schedule/deadlock",
                node,
                f"{fn.qualname}: party 0 blocks on "
                f"{a.kind} {a.label!r} while party 1 blocks on "
                f"{b.kind} {b.label!r} with nothing in flight — both sides "
                "receive first",
            )
            deadlocked = True
            break
        if a is not None and q10:
            report(
                module,
                "schedule/label-mismatch",
                node,
                f"{fn.qualname}: party 0 receives {a.label!r} but party 1's "
                f"oldest unconsumed send is {q10[0].label!r}",
            )
            del q10[0]
            i += 1
            continue
        if b is not None and q01:
            report(
                module,
                "schedule/label-mismatch",
                node,
                f"{fn.qualname}: party 1 receives {b.label!r} but party 0's "
                f"oldest unconsumed send is {q01[0].label!r}",
            )
            del q01[0]
            j += 1
            continue
        # A receive with the peer's trace exhausted and nothing queued.
        blocked = a if a is not None else b
        waiter = 0 if a is not None else 1
        report(
            module,
            "schedule/deadlock",
            node,
            f"{fn.qualname}: party {waiter} blocks on "
            f"{blocked.kind} {blocked.label!r} after the peer's schedule is "
            "exhausted — the receive can never complete",
        )
        deadlocked = True
        break

    if deadlocked:
        return
    for sender, queue in ((0, q01), (1, q10)):
        leftover = Counter(event.label for event in queue)
        for label, count in sorted(leftover.items()):
            report(
                module,
                "schedule/missing-receive",
                node,
                f"{fn.qualname}: party {sender} sends {label!r} {count}x "
                f"that party {1 - sender} never receives",
            )


# ----------------------------------------------------------------------
# counter checks
# ----------------------------------------------------------------------
def _counter_text(counter: Counter) -> str:
    return (
        "{"
        + ", ".join(f"{key}: {count}" for key, count in sorted(counter.items()))
        + "}"
    )


def _check_counters(
    fn: FunctionInfo,
    module: SourceModule,
    trace0: list[CommEvent],
    trace1: list[CommEvent],
    report: _Emitter,
) -> None:
    """The halves must account the same rounds and consume the same material."""
    node = _anchor(fn.node.lineno)
    for kinds, what in ((("acct", "tick"), "round accounting"), (("consume",), "dealer-material consumption")):
        c0 = Counter(e.label for e in trace0 if e.kind in kinds)
        c1 = Counter(e.label for e in trace1 if e.kind in kinds)
        if c0 != c1:
            report(
                module,
                "schedule/round-drift",
                node,
                f"{fn.qualname}: the halves' {what} disagrees — party 0 "
                f"{_counter_text(c0)} vs party 1 {_counter_text(c1)}",
            )


def _check_costs(
    fn: FunctionInfo,
    module: SourceModule,
    trace: list[CommEvent],
    labels: dict[str, str],
    report: _Emitter,
) -> None:
    """Consumed material items == opened rounds of the method's label.

    Only checked for labels the function consumes material for: a half
    that receives its material via parameters (``party_beaver_multiply``
    takes the triple) is audited at the call sites that consume it.
    """
    node = _anchor(fn.node.lineno)
    expected = Counter(
        labels[e.label] for e in trace if e.kind == "consume" and e.label in labels
    )
    observed = Counter(e.label for e in trace if e.kind == "acct")
    for label, count in sorted(expected.items()):
        if observed.get(label, 0) != count:
            report(
                module,
                "schedule/cost-drift",
                node,
                f"{fn.qualname}: consumes material for {count} opening(s) of "
                f"{label!r} but accounts {observed.get(label, 0)} — the "
                "extracted schedule no longer matches costs._METHOD_TRAFFIC",
            )


def _has_events(*traces: list[CommEvent]) -> bool:
    return any(trace for trace in traces)


# ----------------------------------------------------------------------
# per-family audits
# ----------------------------------------------------------------------
def _module_functions(
    module: SourceModule, index: ProjectIndex
) -> list[FunctionInfo]:
    infos = []
    for statement in module.tree.body:
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info = index.by_qualname.get(f"{module.rel}:{statement.name}")
            if info is not None:
                infos.append(info)
    return infos


def _extract_pair(
    fn: FunctionInfo,
    index: ProjectIndex,
    report: _Emitter | None,
) -> tuple[list[CommEvent], list[CommEvent]] | None:
    traces = []
    for party in (0, 1):
        try:
            traces.append(TraceExtractor(index, party=party).trace(fn))
        except UnresolvableTrace as exc:
            if report is not None:
                report(
                    exc.module,
                    "schedule/unresolvable-trace",
                    exc.node,
                    f"cannot statically extract the communication schedule "
                    f"of {fn.qualname!r}: {exc.message}",
                )
            return None
    return traces[0], traces[1]


def _audit_party_module(
    module: SourceModule,
    index: ProjectIndex,
    labels: dict[str, str],
    report: _Emitter,
) -> None:
    for fn in _module_functions(module, index):
        pair = _extract_pair(fn, index, report)
        if pair is None:
            continue
        trace0, trace1 = pair
        if not _has_events(trace0, trace1):
            continue
        moves0 = [e for e in trace0 if e.kind in MOVEMENT_KINDS]
        moves1 = [e for e in trace1 if e.kind in MOVEMENT_KINDS]
        _simulate(fn, module, moves0, moves1, report)
        _check_counters(fn, module, trace0, trace1, report)
        _check_costs(fn, module, trace0, labels, report)


def _audit_joint_module(
    module: SourceModule,
    index: ProjectIndex,
    labels: dict[str, str],
    report: _Emitter,
) -> None:
    for fn in _module_functions(module, index):
        try:
            trace = TraceExtractor(index, party=None).trace(fn)
        except UnresolvableTrace as exc:
            report(
                exc.module,
                "schedule/unresolvable-trace",
                exc.node,
                f"cannot statically extract the communication schedule of "
                f"{fn.qualname!r}: {exc.message}",
            )
            continue
        if trace:
            _check_costs(fn, module, trace, labels, report)


def _class_events(
    module: SourceModule, index: ProjectIndex, cls: ast.ClassDef
) -> dict[str, list[CommEvent]]:
    """Per-method comm events of one class (same-module transitive)."""
    events: dict[str, list[CommEvent]] = {}
    for item in cls.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info = index.by_qualname.get(f"{module.rel}:{cls.name}.{item.name}")
            if info is not None:
                events[item.name] = collect_events(index, info)
    return events


def _role_labels(
    per_method: dict[str, list[CommEvent]]
) -> tuple[set[str], set[str]]:
    sends: set[str] = set()
    recvs: set[str] = set()
    for events in per_method.values():
        for event in events:
            if event.kind == "send":
                sends.add(event.label)
            elif event.kind == "recv":
                recvs.add(event.label)
    return sends, recvs


def _first_movement(
    per_method: dict[str, list[CommEvent]], names: tuple[str, ...]
) -> CommEvent | None:
    for name in names:
        for event in per_method.get(name, []):
            if event.kind in MOVEMENT_KINDS:
                return event
    return None


def _audit_dealer_module(
    module: SourceModule, index: ProjectIndex, report: _Emitter
) -> None:
    """Label-set duality between the RPC stub and the serving loop.

    The dealer's control flow is request-driven — per-branch ordering is
    runtime data — so the check is: every label one side sends, the
    other receives (and vice versa), plus strict ordering of the one
    statically-known sequence, the connection handshake.
    """
    clients: list[ast.ClassDef] = []
    servers: list[ast.ClassDef] = []
    for statement in module.tree.body:
        if isinstance(statement, ast.ClassDef):
            if statement.name.endswith("Client"):
                clients.append(statement)
            elif statement.name.endswith("Server"):
                servers.append(statement)
    if not clients or not servers:
        return
    client_events: dict[str, list[CommEvent]] = {}
    for cls in clients:
        client_events.update(_class_events(module, index, cls))
    server_events: dict[str, list[CommEvent]] = {}
    for cls in servers:
        server_events.update(_class_events(module, index, cls))

    client_sends, client_recvs = _role_labels(client_events)
    server_sends, server_recvs = _role_labels(server_events)
    pairs = (
        (client_sends - server_recvs, "schedule/missing-receive",
         "the client sends {label!r} but no server handler receives it"),
        (server_sends - client_recvs, "schedule/missing-receive",
         "the server sends {label!r} but the client stub never receives it"),
        (client_recvs - server_sends, "schedule/label-mismatch",
         "the client expects {label!r} but no server handler sends it"),
        (server_recvs - client_sends, "schedule/label-mismatch",
         "a server handler expects {label!r} but the client stub never "
         "sends it"),
    )
    anchor = _anchor(servers[0].lineno)
    for labels, rule, template in pairs:
        for label in sorted(labels):
            report(module, rule, anchor, template.format(label=label))

    first_client = _first_movement(client_events, ("_connect", "connect"))
    first_server = _first_movement(
        server_events, ("_serve_connection", "serve_connection")
    )
    if first_client is None or first_server is None:
        return
    if first_client.kind == "recv" and first_server.kind == "recv":
        report(
            module,
            "schedule/deadlock",
            anchor,
            f"handshake deadlock: the client opens by receiving "
            f"{first_client.label!r} while the server opens by receiving "
            f"{first_server.label!r} — neither side speaks first",
        )
    elif (
        first_client.kind != first_server.kind
        and first_client.label != first_server.label
    ):
        report(
            module,
            "schedule/label-mismatch",
            anchor,
            f"handshake mismatch: the client opens with "
            f"{first_client.kind} {first_client.label!r} but the server "
            f"opens with {first_server.kind} {first_server.label!r}",
        )


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------
def run(modules: list[SourceModule]) -> list[Finding]:
    index = build_index(modules)
    labels = method_labels()
    findings: list[Finding] = []
    report = _Emitter(findings)
    for module in modules:
        if module.in_scope(PARTY_SCOPE):
            _audit_party_module(module, index, labels, report)
        elif module.in_scope(JOINT_SCOPE):
            _audit_joint_module(module, index, labels, report)
        if module.in_scope(DEALER_SCOPE):
            _audit_dealer_module(module, index, report)
    return findings


def extract_schedule(modules: list[SourceModule]) -> dict:
    """The full extracted schedule as a JSON-serializable table.

    CI uploads this as an artifact so the protocol schedule — per-half
    event sequences, per-label opening counts, dealer RPC label sets —
    stays reviewable PR over PR without rerunning the analyzer.
    """
    index = build_index(modules)
    labels = method_labels()
    table: dict = {"party": {}, "joint": {}, "dealer": {}}
    for module in modules:
        if module.in_scope(PARTY_SCOPE):
            for fn in _module_functions(module, index):
                pair = _extract_pair(fn, index, report=None)
                if pair is None:
                    table["party"][fn.qualname] = {"error": "unresolvable"}
                    continue
                trace0, trace1 = pair
                if not _has_events(trace0, trace1):
                    continue
                consumed = Counter(
                    e.label for e in trace0 if e.kind == "consume"
                )
                table["party"][fn.qualname] = {
                    "party0": [[e.kind, e.label] for e in trace0],
                    "party1": [[e.kind, e.label] for e in trace1],
                    "consumes": dict(sorted(consumed.items())),
                    "opens": dict(
                        sorted(
                            Counter(
                                e.label for e in trace0 if e.kind == "acct"
                            ).items()
                        )
                    ),
                    "expected_opens": dict(
                        sorted(
                            Counter(
                                labels[e.label]
                                for e in trace0
                                if e.kind == "consume" and e.label in labels
                            ).items()
                        )
                    ),
                }
        elif module.in_scope(JOINT_SCOPE):
            for fn in _module_functions(module, index):
                try:
                    trace = TraceExtractor(index, party=None).trace(fn)
                except UnresolvableTrace:
                    table["joint"][fn.qualname] = {"error": "unresolvable"}
                    continue
                if not trace:
                    continue
                table["joint"][fn.qualname] = {
                    "events": [[e.kind, e.label] for e in trace],
                    "opens": dict(
                        sorted(
                            Counter(
                                e.label for e in trace if e.kind == "acct"
                            ).items()
                        )
                    ),
                }
        if module.in_scope(DEALER_SCOPE):
            for statement in module.tree.body:
                if not isinstance(statement, ast.ClassDef):
                    continue
                if not (
                    statement.name.endswith("Client")
                    or statement.name.endswith("Server")
                ):
                    continue
                per_method = _class_events(module, index, statement)
                sends, recvs = _role_labels(per_method)
                table["dealer"][statement.name] = {
                    "sends": sorted(sends),
                    "recvs": sorted(recvs),
                }
    return table
