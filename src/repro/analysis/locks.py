"""Lock-discipline pass: no blocking work under a state lock, no order cycles.

The PR-4 bug class, promoted to a static invariant. Two rules:

``locks/blocking-under-lock``
    A blocking operation — socket I/O, ``sleep``/``join``, dealer
    generation, pool refill, a transport round-trip — executed while a
    ``threading.Lock``/``RLock``/``Condition`` is held. Under load this
    turns a nanosecond critical section into a convoy: every thread that
    touches the lock stalls behind one slow peer (the seed's
    ``PreprocessingPool.refill`` held the pool lock across full dealer
    generation; ``RemoteServer`` once ran its accept loop under one).

    Two documented exemptions, encoded here rather than inline because
    they are *categories*, not sites:

    * **I/O-serialization locks** (``_write_lock`` / ``_read_lock``):
      their entire purpose is to hold during the blocking write/read so
      concurrent frames cannot interleave on one socket or ring. The
      blocking op *is* the critical section.
    * **generation locks** (``_generation_lock``): dealer generation must
      be serialized to keep the rng stream — and therefore every derived
      share and logit — deterministic. The lock exists to be held across
      generation; the pool's fast path deliberately takes a different
      lock (that separation is exactly what this rule protects).

    ``Condition.wait``/``wait_for`` on a condition *backed by the held
    lock* is exempt: wait releases the lock while blocking.

``locks/order-inversion``
    Lock A is acquired while holding lock B in one place and B while
    holding A in another — the deadlock prerequisite. Acquisition edges
    come from lexically nested ``with`` regions plus one level of
    same-class ``self._method()`` resolution, and from cross-class calls
    when the callee method name is unique repo-wide (how
    ``remote.py -> preprocessing.py`` edges are seen).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .core import Finding, SourceModule, dotted_name, emit

__all__ = ["NAME", "SCOPE", "run"]

NAME = "locks"
SCOPE = ("",)  # every module: locks are flagged wherever they exist

_LOCK_FACTORIES = {"Lock", "RLock"}
_CONDITION_FACTORY = "Condition"

# Calls that park the thread (or do unbounded work) — forbidden under a
# held state lock.
_BLOCKING_CALLS = {
    # thread / time
    "sleep", "join",
    # sockets
    "recv", "recv_into", "recvfrom", "sendall", "send_raw", "accept",
    "connect", "select",
    # transport round-trips and framing
    "push", "pull", "swap", "swap_segments", "push_segments",
    "send_obj", "recv_obj", "send_blob", "recv_blob",
    "read_exact", "_read_exact", "read_into", "write",
    # offline material: dealer generation and pool draws
    "refill", "generate", "_generate", "acquire_bundle", "acquire",
    "infer",
}

# Lock names whose contract is "held across the blocking op" (see module
# docstring). Everything else is treated as a state lock.
_EXEMPT_LOCKS = {"_write_lock", "_read_lock", "_generation_lock"}


@dataclass
class _ClassLocks:
    """Lock topology of one class."""

    name: str
    module: SourceModule
    locks: set[str] = field(default_factory=set)
    conditions: dict[str, str] = field(default_factory=dict)  # cond -> backing lock
    # method name -> lock attrs it acquires at its top level (no lock held)
    method_acquires: dict[str, set[str]] = field(default_factory=dict)


def _self_attr(node: ast.expr) -> str | None:
    """``self._x`` -> ``_x`` (None for anything else)."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _collect_class(cls: ast.ClassDef, module: SourceModule) -> _ClassLocks:
    info = _ClassLocks(name=cls.name, module=module)
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
            continue
        factory = dotted_name(node.value.func)
        if factory is None:
            continue
        tail = factory.split(".")[-1]
        for target in node.targets:
            attr = _self_attr(target)
            if attr is None:
                continue
            if tail in _LOCK_FACTORIES:
                info.locks.add(attr)
            elif tail == _CONDITION_FACTORY:
                backing = attr  # Condition() owns its own lock
                if node.value.args:
                    arg_attr = _self_attr(node.value.args[0])
                    if arg_attr is not None:
                        backing = arg_attr
                info.conditions[attr] = backing
    return info


def _held_name(info: _ClassLocks, attr: str) -> str | None:
    """Canonical lock name a ``with self._x`` acquires (None if not a lock)."""
    if attr in info.locks:
        return attr
    if attr in info.conditions:
        return info.conditions[attr]
    return None


class _MethodAuditor(ast.NodeVisitor):
    """Walks one method tracking the stack of held lock attributes."""

    def __init__(
        self,
        info: _ClassLocks,
        method: ast.FunctionDef | ast.AsyncFunctionDef,
        findings: list[Finding],
        edges: dict[tuple[str, str], ast.AST],
        unique_methods: dict[str, "_ClassLocks"],
    ):
        self.info = info
        self.method = method
        self.findings = findings
        self.edges = edges
        self.unique_methods = unique_methods
        self.held: list[str] = []  # canonical lock attrs, acquisition order

    # -- with regions ---------------------------------------------------
    def visit_With(self, node: ast.With) -> None:
        acquired: list[str] = []
        for item in node.items:
            attr = _self_attr(item.context_expr)
            lock = _held_name(self.info, attr) if attr is not None else None
            if lock is not None:
                if self.held and self.held[-1] != lock:
                    self._record_edge(self.held[-1], lock, node)
                self.held.append(lock)
                acquired.append(lock)
        for statement in node.body:
            self.visit(statement)
        for _ in acquired:
            self.held.pop()

    visit_AsyncWith = visit_With  # same shape

    def _record_edge(self, outer: str, inner: str, node: ast.AST) -> None:
        key = (f"{self.info.name}.{outer}", f"{self.info.name}.{inner}")
        self.edges.setdefault(key, node)

    # -- nested defs: their bodies run later, not under the current lock
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if node is not self.method:
            return
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef

    # -- calls under a held lock ---------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        self.generic_visit(node)
        if not self.held:
            return
        holder = self.held[-1]
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        if name is None:
            return
        if holder in _EXEMPT_LOCKS:
            return
        if name in ("wait", "wait_for", "notify", "notify_all"):
            # Blocking only if the condition is NOT backed by the held
            # lock (waiting on a foreign condition keeps ours held).
            if name in ("wait", "wait_for") and isinstance(func, ast.Attribute):
                attr = _self_attr(func.value)
                backing = self.info.conditions.get(attr) if attr else None
                if backing != holder:
                    emit(
                        self.findings,
                        self.info.module,
                        "locks/blocking-under-lock",
                        node,
                        f"{self.info.name}.{self.method.name} waits on a "
                        f"condition not backed by held lock {holder!r} — the "
                        "lock stays held for the whole wait",
                    )
            return
        if name in _BLOCKING_CALLS:
            emit(
                self.findings,
                self.info.module,
                "locks/blocking-under-lock",
                node,
                f"{self.info.name}.{self.method.name} calls blocking "
                f"{name}() while holding {holder!r} — every thread touching "
                "that lock convoys behind this operation (the PR-4 bug "
                "class)",
            )
            return
        # One level of interprocedural resolution: self-methods, plus
        # repo-unique method names on other objects.
        target = None
        if isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Name) and func.value.id == "self":
                target = self.info.method_acquires.get(name)
                owner = self.info.name
            else:
                other = self.unique_methods.get(name)
                if other is not None and other is not self.info:
                    target = other.method_acquires.get(name)
                    owner = other.name
        if target:
            for inner in target:
                key = (f"{self.info.name}.{holder}", f"{owner}.{inner}")
                self.edges.setdefault(key, node)


def _method_acquisitions(
    method: ast.FunctionDef | ast.AsyncFunctionDef, info: _ClassLocks
) -> set[str]:
    acquired: set[str] = set()
    for node in ast.walk(method):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                attr = _self_attr(item.context_expr)
                lock = _held_name(info, attr) if attr is not None else None
                if lock is not None:
                    acquired.add(lock)
    return acquired


def run(modules: list[SourceModule]) -> list[Finding]:
    findings: list[Finding] = []
    classes: list[tuple[_ClassLocks, ast.ClassDef]] = []
    for module in modules:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                info = _collect_class(node, module)
                if info.locks or info.conditions:
                    classes.append((info, node))

    # Pre-compute per-method acquisition sets and the unique-name map.
    method_owner: dict[str, list[_ClassLocks]] = {}
    for info, cls in classes:
        for node in cls.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.method_acquires[node.name] = _method_acquisitions(node, info)
                method_owner.setdefault(node.name, []).append(info)
    unique_methods = {
        name: owners[0]
        for name, owners in method_owner.items()
        if len(owners) == 1 and owners[0].method_acquires.get(name)
    }

    edges: dict[tuple[str, str], ast.AST] = {}
    edge_site: dict[tuple[str, str], _ClassLocks] = {}
    for info, cls in classes:
        for node in cls.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                before = set(edges)
                auditor = _MethodAuditor(info, node, findings, edges, unique_methods)
                auditor.visit(node)
                for key in set(edges) - before:
                    edge_site[key] = info

    # Pairwise inversion: A->B and B->A both observed.
    reported: set[frozenset[str]] = set()
    for (outer, inner), node in edges.items():
        if (inner, outer) in edges and frozenset((outer, inner)) not in reported:
            reported.add(frozenset((outer, inner)))
            info = edge_site[(outer, inner)]
            emit(
                findings,
                info.module,
                "locks/order-inversion",
                node,
                f"lock acquisition order inverted: {outer} -> {inner} here "
                f"but {inner} -> {outer} elsewhere — a deadlock needs only "
                "two threads hitting both paths",
            )
    return findings
