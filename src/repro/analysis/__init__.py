"""``c2pi audit`` — static invariant auditor for the C2PI codebase.

Seven AST passes over the repo's own source (see DESIGN.md §11, §13):

* :mod:`~repro.analysis.secrecy` — share-typed values reach the wire
  only through sanctioned masking/staging chains;
* :mod:`~repro.analysis.locks` — no blocking work under a state lock,
  no acquisition-order inversions (the PR-4 bug class);
* :mod:`~repro.analysis.determinism` — no ambient randomness, wall-clock
  reads, or set-iteration order on wire/logit-affecting paths;
* :mod:`~repro.analysis.wire_labels` — every accounting call site
  carries a label registered in ``costs.known_wire_labels()``;
* :mod:`~repro.analysis.exports` — ``__all__`` and the public surface
  agree (promoted from ``tests/test_exports.py``);
* :mod:`~repro.analysis.schedule` — the two halves of every protocol
  agree on the round schedule (duality: every send matched by the
  peer's receive of the same label in the same order), and the
  extracted per-label round counts match ``costs._METHOD_TRAFFIC``;
* :mod:`~repro.analysis.taint` — interprocedural secret-taint: shares,
  seeds, keys and unsealed bundle payloads stay out of exception
  messages, logs, and unsanctioned wire sends.

The first five are per-function pattern passes; the last two stand on
the :mod:`~repro.analysis.dataflow` interprocedural engine. The passes
never import the code under audit — parsing is the only contact — so
they run in milliseconds and survive broken fixtures.
"""

from __future__ import annotations

from pathlib import Path

from . import determinism, exports, locks, schedule, secrecy, taint, wire_labels
from .core import (
    AuditReport,
    Finding,
    SourceModule,
    load_baseline,
    load_modules,
)

__all__ = [
    "PASSES",
    "AuditReport",
    "Finding",
    "SourceModule",
    "run_audit",
    "load_baseline",
    "load_modules",
    "default_root",
    "default_baseline",
]

#: Registered passes, run in this order. Each entry is a module exposing
#: ``NAME`` and ``run(modules) -> list[Finding]``.
PASSES = (secrecy, locks, determinism, wire_labels, exports, schedule, taint)


def default_root() -> Path:
    """The source tree the repo gate audits: ``src/repro``."""
    return Path(__file__).resolve().parents[1]


def default_baseline(root: Path | None = None) -> Path:
    """``AUDIT_BASELINE.json`` at the repo root (two above ``src/``)."""
    base = Path(root) if root is not None else default_root()
    return base.resolve().parents[1] / "AUDIT_BASELINE.json"


def run_audit(
    root: Path | None = None,
    passes: tuple | None = None,
) -> AuditReport:
    """Run the selected passes over every module under ``root``."""
    root = Path(root) if root is not None else default_root()
    selected = PASSES if passes is None else passes
    modules = load_modules(root)
    findings: list[Finding] = []
    for audit_pass in selected:
        findings.extend(audit_pass.run(modules))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return AuditReport(
        root=str(root),
        findings=findings,
        passes=[audit_pass.NAME for audit_pass in selected],
        modules_scanned=len(modules),
    )
