"""Differentiable neural-network primitives on :class:`~repro.nn.tensor.Tensor`.

The convolution family is implemented with the im2col/col2im lowering: a
convolution becomes one big matrix multiplication, which is the only way to
get acceptable throughput for VGG-scale models in pure numpy. Dilation is
supported because the DINA attack model uses dilated convolutions in its
basic inverse blocks (Section III-B of the paper).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from .tensor import Tensor

__all__ = [
    "im2col",
    "conv_output_size",
    "col2im",
    "conv2d",
    "conv_transpose2d",
    "max_pool2d",
    "avg_pool2d",
    "upsample_nearest2d",
    "batch_norm2d",
    "linear",
    "softmax",
    "log_softmax",
    "relu",
    "dropout",
]


def conv_output_size(size: int, kernel: int, stride: int, padding: int, dilation: int = 1) -> int:
    """Spatial output size of a convolution along one axis."""
    effective = dilation * (kernel - 1) + 1
    return (size + 2 * padding - effective) // stride + 1


@lru_cache(maxsize=128)
def _col_indices(
    c: int,
    h: int,
    w: int,
    kh: int,
    kw: int,
    stride: int,
    padding: int,
    dilation: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int, int]:
    """Index arrays mapping a padded NCHW image into its im2col matrix.

    Cached per (shape, kernel) signature: a served model lowers the same
    convolutions request after request, and rebuilding these index
    matrices dominated the per-inference clear-path profile. The cached
    arrays are frozen — callers use them as read-only fancy indices.
    """
    out_h = conv_output_size(h, kh, stride, padding, dilation)
    out_w = conv_output_size(w, kw, stride, padding, dilation)

    i0 = dilation * np.repeat(np.arange(kh), kw)
    i0 = np.tile(i0, c)
    i1 = stride * np.repeat(np.arange(out_h), out_w)
    j0 = dilation * np.tile(np.arange(kw), kh * c)
    j1 = stride * np.tile(np.arange(out_w), out_h)

    rows = i0.reshape(-1, 1) + i1.reshape(1, -1)
    cols = j0.reshape(-1, 1) + j1.reshape(1, -1)
    channels = np.repeat(np.arange(c), kh * kw).reshape(-1, 1)
    for index in (channels, rows, cols):
        index.setflags(write=False)
    return channels, rows, cols, out_h, out_w


@lru_cache(maxsize=128)
def _flat_gather(
    c: int,
    h: int,
    w: int,
    kh: int,
    kw: int,
    stride: int,
    padding: int,
    dilation: int,
) -> tuple[np.ndarray, int, int, int, int]:
    """The im2col gather as one raveled index into the padded image.

    A single-axis ``take`` over this precomputed flat index selects the
    same elements as the three-array fancy index it replaces, several
    times faster.
    """
    channels, rows, cols, out_h, out_w = _col_indices(
        c, h, w, kh, kw, stride, padding, dilation
    )
    h_padded, w_padded = h + 2 * padding, w + 2 * padding
    flat = ((channels * h_padded + rows) * w_padded + cols).ravel()
    flat.setflags(write=False)
    return flat, channels.shape[0], rows.shape[1], out_h, out_w


def im2col(
    x: np.ndarray,
    kh: int,
    kw: int,
    stride: int = 1,
    padding: int = 0,
    dilation: int = 1,
) -> tuple[np.ndarray, int, int]:
    """Lower an NCHW array into a (N, C*kh*kw, out_h*out_w) patch matrix."""
    n, c, h, w = x.shape
    if padding > 0:
        # Hand-rolled zero pad: np.pad's generality costs more Python
        # time than the whole gather for small feature maps.
        padded = np.zeros(
            (n, c, h + 2 * padding, w + 2 * padding), dtype=x.dtype
        )
        padded[:, :, padding : padding + h, padding : padding + w] = x
        x = padded
    flat, k, patch_cols, out_h, out_w = _flat_gather(
        c, h, w, kh, kw, stride, padding, dilation
    )
    # The gather lands in the exact memory layout the old three-array
    # fancy index produced — a (K, L, N) base transposed to (N, K, L) —
    # so every downstream float reduction keeps its summation order and
    # the pinned logits stay bit-identical.
    patches = (
        x.reshape(n, -1)
        .T.take(flat, axis=0)
        .reshape(k, patch_cols, n)
        .transpose(2, 0, 1)
    )
    return patches, out_h, out_w


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int = 1,
    padding: int = 0,
    dilation: int = 1,
) -> np.ndarray:
    """Adjoint of :func:`im2col`: scatter patch gradients back to NCHW."""
    n, c, h, w = x_shape
    h_padded, w_padded = h + 2 * padding, w + 2 * padding
    out = np.zeros((n, c, h_padded, w_padded), dtype=cols.dtype)
    channels, rows, colidx, _, _ = _col_indices(c, h, w, kh, kw, stride, padding, dilation)
    np.add.at(out, (slice(None), channels, rows, colidx), cols)
    if padding > 0:
        out = out[:, :, padding:-padding, padding:-padding]
    return out


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int = 1,
    padding: int = 0,
    dilation: int = 1,
) -> Tensor:
    """2-D convolution (cross-correlation) of NCHW input with OIHW weights."""
    n, c, h, w = x.shape
    out_channels, in_channels, kh, kw = weight.shape
    if in_channels != c:
        raise ValueError(f"conv2d channel mismatch: input {c}, weight {in_channels}")

    cols, out_h, out_w = im2col(x.data, kh, kw, stride, padding, dilation)
    w_mat = weight.data.reshape(out_channels, -1)
    out = np.matmul(w_mat, cols)  # (N, O, out_h*out_w)
    if bias is not None:
        out = out + bias.data.reshape(1, -1, 1)
    out = out.reshape(n, out_channels, out_h, out_w)

    x_shape = x.shape
    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad):
        grad_mat = grad.reshape(n, out_channels, -1)
        grad_w = np.einsum("nol,nkl->ok", grad_mat, cols).reshape(weight.shape)
        grad_cols = np.matmul(w_mat.T, grad_mat)
        grad_x = col2im(grad_cols, x_shape, kh, kw, stride, padding, dilation)
        if bias is None:
            return (grad_x, grad_w)
        grad_b = grad_mat.sum(axis=(0, 2))
        return (grad_x, grad_w, grad_b)

    return Tensor._make(out, parents, backward)


def conv_transpose2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int = 1,
    padding: int = 0,
    output_padding: int = 0,
) -> Tensor:
    """Transposed convolution (a.k.a. deconvolution) for NCHW input.

    ``weight`` uses the (in_channels, out_channels, kh, kw) layout. The
    forward pass is exactly the adjoint of a strided convolution, so it is
    implemented with :func:`col2im`; the backward pass re-uses the forward
    im2col machinery.
    """
    n, c, h, w = x.shape
    in_channels, out_channels, kh, kw = weight.shape
    if in_channels != c:
        raise ValueError(f"conv_transpose2d channel mismatch: input {c}, weight {in_channels}")

    out_h = (h - 1) * stride - 2 * padding + kh + output_padding
    out_w = (w - 1) * stride - 2 * padding + kw + output_padding

    w_mat = weight.data.reshape(in_channels, -1)  # (C, O*kh*kw)
    x_mat = x.data.reshape(n, c, -1)
    cols = np.matmul(w_mat.T, x_mat)  # (N, O*kh*kw, h*w)
    out = col2im(
        cols,
        (n, out_channels, out_h, out_w),
        kh,
        kw,
        stride=stride,
        padding=padding,
        dilation=1,
    )
    if bias is not None:
        out = out + bias.data.reshape(1, -1, 1, 1)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad):
        grad_cols, _, _ = im2col(grad, kh, kw, stride=stride, padding=padding)
        grad_x = np.matmul(w_mat, grad_cols).reshape(x.shape)
        grad_w = np.einsum("ncl,nkl->ck", x_mat, grad_cols).reshape(weight.shape)
        if bias is None:
            return (grad_x, grad_w)
        grad_b = grad.sum(axis=(0, 2, 3))
        return (grad_x, grad_w, grad_b)

    return Tensor._make(out, parents, backward)


def max_pool2d(x: Tensor, kernel_size: int = 2, stride: int | None = None) -> Tensor:
    """Max pooling over non-overlapping (or strided) square windows."""
    stride = stride or kernel_size
    n, c, h, w = x.shape
    cols, out_h, out_w = im2col(
        x.data.reshape(n * c, 1, h, w), kernel_size, kernel_size, stride=stride
    )
    # cols: (N*C, k*k, L)
    argmax = cols.argmax(axis=1)
    out = np.take_along_axis(cols, argmax[:, None, :], axis=1).reshape(n, c, out_h, out_w)

    def backward(grad):
        grad_flat = grad.reshape(n * c, 1, -1)
        grad_cols = np.zeros_like(cols)
        np.put_along_axis(grad_cols, argmax[:, None, :], grad_flat, axis=1)
        grad_x = col2im(grad_cols, (n * c, 1, h, w), kernel_size, kernel_size, stride=stride)
        return (grad_x.reshape(x.shape),)

    return Tensor._make(out, (x,), backward)


def avg_pool2d(x: Tensor, kernel_size: int = 2, stride: int | None = None) -> Tensor:
    """Average pooling over square windows."""
    stride = stride or kernel_size
    n, c, h, w = x.shape
    cols, out_h, out_w = im2col(
        x.data.reshape(n * c, 1, h, w), kernel_size, kernel_size, stride=stride
    )
    out = cols.mean(axis=1).reshape(n, c, out_h, out_w)
    window = kernel_size * kernel_size

    def backward(grad):
        grad_cols = np.repeat(grad.reshape(n * c, 1, -1), window, axis=1) / window
        grad_x = col2im(grad_cols, (n * c, 1, h, w), kernel_size, kernel_size, stride=stride)
        return (grad_x.reshape(x.shape),)

    return Tensor._make(out, (x,), backward)


def upsample_nearest2d(x: Tensor, scale: int = 2) -> Tensor:
    """Nearest-neighbour spatial upsampling by an integer factor."""
    data = x.data.repeat(scale, axis=2).repeat(scale, axis=3)
    n, c, h, w = x.shape

    def backward(grad):
        g = grad.reshape(n, c, h, scale, w, scale).sum(axis=(3, 5))
        return (g,)

    return Tensor._make(data, (x,), backward)


def batch_norm2d(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    training: bool,
    momentum: float = 0.1,
    eps: float = 1e-5,
) -> Tensor:
    """Batch normalisation over the channel axis of an NCHW tensor.

    ``running_mean``/``running_var`` are plain numpy buffers updated in place
    during training (they are state, not differentiable parameters).
    """
    if training:
        mean = x.data.mean(axis=(0, 2, 3))
        var = x.data.var(axis=(0, 2, 3))
        running_mean *= 1.0 - momentum
        running_mean += momentum * mean
        running_var *= 1.0 - momentum
        running_var += momentum * var
    else:
        mean = running_mean
        var = running_var

    mean_b = mean.reshape(1, -1, 1, 1)
    inv_std = 1.0 / np.sqrt(var.reshape(1, -1, 1, 1) + eps)
    x_hat = (x.data - mean_b) * inv_std
    out = gamma.data.reshape(1, -1, 1, 1) * x_hat + beta.data.reshape(1, -1, 1, 1)

    n, c, h, w = x.shape
    m = n * h * w

    def backward(grad):
        grad_gamma = (grad * x_hat).sum(axis=(0, 2, 3))
        grad_beta = grad.sum(axis=(0, 2, 3))
        grad_xhat = grad * gamma.data.reshape(1, -1, 1, 1)
        if training:
            # Standard batch-norm backward through the batch statistics.
            sum_grad = grad_xhat.sum(axis=(0, 2, 3), keepdims=True)
            sum_grad_xhat = (grad_xhat * x_hat).sum(axis=(0, 2, 3), keepdims=True)
            grad_x = (inv_std / m) * (m * grad_xhat - sum_grad - x_hat * sum_grad_xhat)
        else:
            grad_x = grad_xhat * inv_std
        return (grad_x.astype(grad.dtype), grad_gamma, grad_beta)

    return Tensor._make(out.astype(x.data.dtype), (x, gamma, beta), backward)


def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` with (out, in)-shaped weights."""
    out = x @ weight.transpose()
    if bias is not None:
        out = out + bias
    return out


def relu(x: Tensor) -> Tensor:
    return x.relu()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def dropout(x: Tensor, p: float, training: bool, rng: np.random.Generator) -> Tensor:
    """Inverted dropout: identity at evaluation time."""
    if not training or p <= 0.0:
        return x
    keep = 1.0 - p
    mask = (rng.random(x.shape) < keep).astype(x.data.dtype) / keep
    return x * Tensor(mask)
