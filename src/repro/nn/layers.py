"""Layer (``Module``) abstractions built on the autograd tensor.

The module system intentionally mirrors the familiar torch.nn surface —
``parameters()``, ``train()``/``eval()``, ``state_dict()`` — because the
paper's workloads (VGG/AlexNet training, inversion-network training, layer
slicing for the crypto/clear partition) are most naturally expressed that
way. Layers store parameters as :class:`~repro.nn.tensor.Tensor` with
``requires_grad=True`` and non-trainable state (batch-norm running
statistics) as plain numpy arrays.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from . import functional as F
from . import init
from .tensor import Tensor

__all__ = [
    "Module",
    "Sequential",
    "Conv2d",
    "ConvTranspose2d",
    "Linear",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "Sigmoid",
    "MaxPool2d",
    "AvgPool2d",
    "AdaptiveAvgPool2d",
    "UpsampleNearest2d",
    "BatchNorm2d",
    "Flatten",
    "Dropout",
    "Identity",
]


class Module:
    """Base class for all layers and models."""

    def __init__(self):
        self._parameters: dict[str, Tensor] = {}
        self._buffers: dict[str, np.ndarray] = {}
        self._modules: dict[str, "Module"] = {}
        self.training: bool = True

    # -- attribute plumbing --------------------------------------------
    def __setattr__(self, name, value):
        if isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    def register_parameter(self, name: str, value: Tensor) -> Tensor:
        value.requires_grad = True
        value.name = name
        self._parameters[name] = value
        object.__setattr__(self, name, value)
        return value

    def register_buffer(self, name: str, value: np.ndarray) -> np.ndarray:
        self._buffers[name] = value
        object.__setattr__(self, name, value)
        return value

    # -- traversal ------------------------------------------------------
    def modules(self) -> Iterator["Module"]:
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Tensor]]:
        for name, param in self._parameters.items():
            yield prefix + name, param
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix + child_name + ".")

    def parameters(self) -> list[Tensor]:
        return [p for _, p in self.named_parameters()]

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        for name, buf in self._buffers.items():
            yield prefix + name, buf
        for child_name, child in self._modules.items():
            yield from child.named_buffers(prefix + child_name + ".")

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # -- mode switching ---------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # -- state dict -------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        state = {name: p.data.copy() for name, p in self.named_parameters()}
        state.update({name: b.copy() for name, b in self.named_buffers()})
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own_params = dict(self.named_parameters())
        own_buffers = dict(self.named_buffers())
        missing = (set(own_params) | set(own_buffers)) - set(state)
        if missing:
            raise KeyError(f"state dict missing keys: {sorted(missing)}")
        for name, param in own_params.items():
            if param.data.shape != state[name].shape:
                raise ValueError(
                    f"shape mismatch for {name}: {param.data.shape} vs {state[name].shape}"
                )
            param.data = state[name].astype(param.data.dtype).copy()
        for name, buf in own_buffers.items():
            buf[...] = state[name]

    # -- call protocol ------------------------------------------------------
    def forward(self, x: Tensor) -> Tensor:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs) -> Tensor:
        return self.forward(*args, **kwargs)


class Sequential(Module):
    """Chain of modules. Supports indexing and slicing, which the C2PI
    partitioner uses to carve a model into crypto and clear segments."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)
        for i, layer in enumerate(self.layers):
            self._modules[str(i)] = layer

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __len__(self) -> int:
        return len(self.layers)

    def __iter__(self):
        return iter(self.layers)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return Sequential(*self.layers[index])
        return self.layers[index]

    def append(self, layer: Module) -> None:
        self._modules[str(len(self.layers))] = layer
        self.layers.append(layer)


class Conv2d(Module):
    """2-D convolution layer (NCHW in, OIHW weights)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        dilation: int = 1,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.dilation = dilation
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.register_parameter("weight", Tensor(init.kaiming_normal(shape, rng)))
        if bias:
            self.register_parameter("bias", Tensor(init.zeros((out_channels,))))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(
            x,
            self.weight,
            self.bias,
            stride=self.stride,
            padding=self.padding,
            dilation=self.dilation,
        )

    def __repr__(self) -> str:
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, k={self.kernel_size}, "
            f"s={self.stride}, p={self.padding}, d={self.dilation})"
        )


class ConvTranspose2d(Module):
    """Transposed convolution; weights use the (in, out, kh, kw) layout."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        output_padding: int = 0,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.output_padding = output_padding
        shape = (in_channels, out_channels, kernel_size, kernel_size)
        # Fan-in for the transposed direction is per-output-pixel
        # contribution count, approximated by the forward-conv formula on the
        # swapped layout.
        weight = init.kaiming_normal(
            (out_channels, in_channels, kernel_size, kernel_size), rng
        ).transpose(1, 0, 2, 3)
        self.register_parameter("weight", Tensor(np.ascontiguousarray(weight)))
        if bias:
            self.register_parameter("bias", Tensor(init.zeros((out_channels,))))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv_transpose2d(
            x,
            self.weight,
            self.bias,
            stride=self.stride,
            padding=self.padding,
            output_padding=self.output_padding,
        )


class Linear(Module):
    """Fully connected layer with (out, in)-shaped weights."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.register_parameter(
            "weight", Tensor(init.kaiming_uniform((out_features, in_features), rng))
        )
        if bias:
            self.register_parameter("bias", Tensor(init.zeros((out_features,))))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features})"


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()

    def __repr__(self) -> str:
        return "ReLU()"


class LeakyReLU(Module):
    def __init__(self, negative_slope: float = 0.01):
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return x.leaky_relu(self.negative_slope)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class MaxPool2d(Module):
    def __init__(self, kernel_size: int = 2, stride: int | None = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride)

    def __repr__(self) -> str:
        return f"MaxPool2d(k={self.kernel_size}, s={self.stride})"


class AvgPool2d(Module):
    def __init__(self, kernel_size: int = 2, stride: int | None = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride)


class AdaptiveAvgPool2d(Module):
    """Average-pool to a fixed spatial size (only exact divisors supported)."""

    def __init__(self, output_size: int = 1):
        super().__init__()
        self.output_size = output_size

    def forward(self, x: Tensor) -> Tensor:
        h = x.shape[2]
        if h % self.output_size != 0:
            raise ValueError(f"adaptive pool needs divisible sizes, got {h}->{self.output_size}")
        k = h // self.output_size
        return F.avg_pool2d(x, k, k)


class UpsampleNearest2d(Module):
    def __init__(self, scale: int = 2):
        super().__init__()
        self.scale = scale

    def forward(self, x: Tensor) -> Tensor:
        return F.upsample_nearest2d(x, self.scale)


class BatchNorm2d(Module):
    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5):
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.register_parameter("gamma", Tensor(init.ones((num_features,))))
        self.register_parameter("beta", Tensor(init.zeros((num_features,))))
        self.register_buffer("running_mean", np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_var", np.ones(num_features, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        return F.batch_norm2d(
            x,
            self.gamma,
            self.beta,
            self.running_mean,
            self.running_var,
            training=self.training,
            momentum=self.momentum,
            eps=self.eps,
        )

    def __repr__(self) -> str:
        return f"BatchNorm2d({self.num_features})"


class Flatten(Module):
    def __init__(self, start_dim: int = 1):
        super().__init__()
        self.start_dim = start_dim

    def forward(self, x: Tensor) -> Tensor:
        return x.flatten(self.start_dim)

    def __repr__(self) -> str:
        return "Flatten()"


class Dropout(Module):
    def __init__(self, p: float = 0.5, rng: np.random.Generator | None = None):
        super().__init__()
        self.p = p
        self.rng = rng or np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.training, self.rng)


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x

    def __repr__(self) -> str:
        return "Identity()"
