"""Weight initialisation schemes.

All initialisers take an explicit :class:`numpy.random.Generator` so every
experiment in the reproduction is deterministic given its seed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["kaiming_normal", "kaiming_uniform", "xavier_uniform", "zeros", "ones"]


def _fan_in_out(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) == 2:  # linear (out, in)
        fan_out, fan_in = shape
    elif len(shape) == 4:  # conv (out, in, kh, kw)
        receptive = shape[2] * shape[3]
        fan_in = shape[1] * receptive
        fan_out = shape[0] * receptive
    else:
        raise ValueError(f"unsupported weight shape {shape}")
    return fan_in, fan_out


def kaiming_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He-normal init, the standard for ReLU networks (VGG/AlexNet here)."""
    fan_in, _ = _fan_in_out(shape)
    std = np.sqrt(2.0 / fan_in)
    return (rng.standard_normal(shape) * std).astype(np.float32)


def kaiming_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    fan_in, _ = _fan_in_out(shape)
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    fan_in, fan_out = _fan_in_out(shape)
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float32)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    return np.ones(shape, dtype=np.float32)
