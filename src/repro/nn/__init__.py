"""``repro.nn`` — a from-scratch numpy deep-learning substrate.

The C2PI paper assumes a full DL framework (PyTorch) for training victim
networks, running inversion attacks and measuring accuracy. This package
provides the equivalent capability offline: an autograd engine
(:mod:`repro.nn.tensor`), differentiable primitives
(:mod:`repro.nn.functional`), layers (:mod:`repro.nn.layers`), optimizers,
losses, initialisation and serialisation.
"""

from . import functional, init
from .layers import (
    AdaptiveAvgPool2d,
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    ConvTranspose2d,
    Dropout,
    Flatten,
    Identity,
    LeakyReLU,
    Linear,
    MaxPool2d,
    Module,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
    UpsampleNearest2d,
)
from .losses import cross_entropy, l2_loss, mse_loss, nll_loss
from .optim import SGD, Adam, Optimizer
from .serialization import load_model, save_model
from .tensor import Tensor, is_grad_enabled, no_grad, ones, randn, tensor, zeros

__all__ = [
    "functional",
    "init",
    "Tensor",
    "tensor",
    "zeros",
    "ones",
    "randn",
    "no_grad",
    "is_grad_enabled",
    "Module",
    "Sequential",
    "Conv2d",
    "ConvTranspose2d",
    "Linear",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "Sigmoid",
    "MaxPool2d",
    "AvgPool2d",
    "AdaptiveAvgPool2d",
    "UpsampleNearest2d",
    "BatchNorm2d",
    "Flatten",
    "Dropout",
    "Identity",
    "SGD",
    "Adam",
    "Optimizer",
    "mse_loss",
    "l2_loss",
    "cross_entropy",
    "nll_loss",
    "save_model",
    "load_model",
]
