"""Reverse-mode automatic differentiation on numpy arrays.

This module is the foundation of :mod:`repro.nn`. It provides a
:class:`Tensor` type that records the operations applied to it and can
back-propagate gradients through arbitrary DAGs of those operations.

The design is a classic "tape" autograd:

* every differentiable operation returns a new :class:`Tensor` whose
  ``_parents`` reference the inputs and whose ``_backward`` closure knows how
  to push an upstream gradient to those inputs;
* :meth:`Tensor.backward` topologically sorts the graph reachable from the
  output and runs the closures in reverse order, accumulating ``.grad``.

Only tensors with ``requires_grad=True`` (or depending on one) build graph
nodes, so pure inference carries no bookkeeping overhead.

The paper's experiments (training VGG variants, training inversion attack
models, and running the maximum-likelihood attack which differentiates with
respect to the *input image*) all run on top of this engine.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "tensor", "zeros", "ones", "randn"]


# Per-thread so concurrent serving sessions (each wrapping its clear-phase
# forward in no_grad) cannot race on one process-wide flag: interleaved
# enter/exit from two threads could restore the wrong previous value and
# leave gradient recording off for everyone.
_GRAD_STATE = threading.local()


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph construction (this thread only).

    Used for evaluation loops, the secure-inference engine (which operates on
    plain integer arrays anyway) and for in-place parameter updates inside
    the optimizers.
    """
    previous = is_grad_enabled()
    _GRAD_STATE.enabled = False
    try:
        yield
    finally:
        _GRAD_STATE.enabled = previous


def is_grad_enabled() -> bool:
    """Return whether operations currently record gradient information."""
    return getattr(_GRAD_STATE, "enabled", True)


def _as_array(data, dtype=None) -> np.ndarray:
    if isinstance(data, Tensor):
        data = data.data
    if dtype is not None:
        return np.asarray(data, dtype=dtype)
    if isinstance(data, (np.ndarray, np.generic)):
        # Preserve the float precision of arrays (and numpy scalars, which
        # reductions produce) the caller already built: float64 inputs stay
        # float64 — gradient checking relies on this.
        array = np.asarray(data)
        if array.dtype.kind in "iub":
            return array.astype(np.float32)
        return array
    array = np.asarray(data)
    if array.dtype.kind in "iub" or array.dtype == np.float64:
        # Python scalars/lists default to float32, the library's working
        # precision: it halves memory traffic for conv-heavy workloads.
        array = array.astype(np.float32)
    return array


def _sum_to_shape(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` (which may be broadcast) back to ``shape``.

    Broadcasting in the forward direction becomes summation in the backward
    direction; this helper undoes numpy broadcasting for arbitrary shapes.
    """
    if grad.shape == shape:
        return grad
    # Added leading axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Axes broadcast from 1 to n.
    axes = tuple(i for i, (g, s) in enumerate(zip(grad.shape, shape)) if s == 1 and g != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor with reverse-mode automatic differentiation.

    Parameters
    ----------
    data:
        Anything convertible to a numpy array. Integer input is promoted to
        ``float32``.
    requires_grad:
        If ``True``, gradients with respect to this tensor are accumulated
        into :attr:`grad` during :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(self, data, requires_grad: bool = False, dtype=None):
        self.data: np.ndarray = _as_array(data, dtype)
        self.grad: np.ndarray | None = None
        self.requires_grad: bool = bool(requires_grad)
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self.name: str | None = None

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, dtype={self.dtype}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        self.grad = None

    def astype(self, dtype) -> "Tensor":
        return Tensor(self.data.astype(dtype), requires_grad=False)

    # ------------------------------------------------------------------
    # graph construction helper
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create the result tensor of an op, wiring the graph if needed."""
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = grad.astype(self.data.dtype, copy=True)
        else:
            self.grad += grad

    # ------------------------------------------------------------------
    # backward
    # ------------------------------------------------------------------
    def backward(self, grad: np.ndarray | None = None) -> None:
        """Back-propagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Upstream gradient. Defaults to ``1`` for scalar outputs (the
            common loss case); required for non-scalar outputs.
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without a gradient requires a scalar output")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)

        # Topological order over the reachable graph.
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad and node._backward is None:
                # Leaf tensor: accumulate into .grad.
                node._accumulate(node_grad)
            if node._backward is not None:
                node._push_parent_grads(node_grad, grads)

    def _push_parent_grads(self, grad: np.ndarray, grads: dict[int, np.ndarray]) -> None:
        parent_grads = self._backward(grad)
        if not isinstance(parent_grads, tuple):
            parent_grads = (parent_grads,)
        for parent, pgrad in zip(self._parents, parent_grads):
            if pgrad is None or not parent.requires_grad:
                continue
            if parent._backward is None:
                parent._accumulate(pgrad)
            else:
                key = id(parent)
                if key in grads:
                    grads[key] = grads[key] + pgrad
                else:
                    grads[key] = pgrad

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data + other.data

        def backward(grad):
            return (_sum_to_shape(grad, self.shape), _sum_to_shape(grad, other.shape))

        return Tensor._make(data, (self, other), backward)

    __radd__ = __add__

    def __sub__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data - other.data

        def backward(grad):
            return (_sum_to_shape(grad, self.shape), _sum_to_shape(-grad, other.shape))

        return Tensor._make(data, (self, other), backward)

    def __rsub__(self, other) -> "Tensor":
        return Tensor(other) - self

    def __mul__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data * other.data
        a, b = self, other

        def backward(grad):
            return (
                _sum_to_shape(grad * b.data, a.shape),
                _sum_to_shape(grad * a.data, b.shape),
            )

        return Tensor._make(data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data / other.data
        a, b = self, other

        def backward(grad):
            return (
                _sum_to_shape(grad / b.data, a.shape),
                _sum_to_shape(-grad * a.data / (b.data * b.data), b.shape),
            )

        return Tensor._make(data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return Tensor(other) / self

    def __neg__(self) -> "Tensor":
        def backward(grad):
            return (-grad,)

        return Tensor._make(-self.data, (self,), backward)

    def __pow__(self, exponent: float) -> "Tensor":
        data = self.data**exponent
        base = self

        def backward(grad):
            return (grad * exponent * base.data ** (exponent - 1),)

        return Tensor._make(data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data @ other.data
        a, b = self, other

        def backward(grad):
            a_grad = grad @ np.swapaxes(b.data, -1, -2)
            b_grad = np.swapaxes(a.data, -1, -2) @ grad
            return (_sum_to_shape(a_grad, a.shape), _sum_to_shape(b_grad, b.shape))

        return Tensor._make(data, (self, other), backward)

    # comparisons produce plain numpy bool arrays (non-differentiable)
    def __gt__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data > other

    def __lt__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data < other

    def __ge__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data >= other

    def __le__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data <= other

    # ------------------------------------------------------------------
    # elementwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad):
            return (grad * data,)

        return Tensor._make(data, (self,), backward)

    def log(self) -> "Tensor":
        source = self

        def backward(grad):
            return (grad / source.data,)

        return Tensor._make(np.log(self.data), (self,), backward)

    def sqrt(self) -> "Tensor":
        data = np.sqrt(self.data)

        def backward(grad):
            return (grad * 0.5 / data,)

        return Tensor._make(data, (self,), backward)

    def abs(self) -> "Tensor":
        source = self

        def backward(grad):
            return (grad * np.sign(source.data),)

        return Tensor._make(np.abs(self.data), (self,), backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad):
            return (grad * (1.0 - data * data),)

        return Tensor._make(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        # exp overflow here is pure saturation: exp(-x) -> inf makes the
        # quotient exactly 0.0, the correct limit — same bits as before.
        with np.errstate(over="ignore"):
            data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad):
            return (grad * data * (1.0 - data),)

        return Tensor._make(data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        data = np.where(mask, self.data, 0.0).astype(self.data.dtype)

        def backward(grad):
            return (grad * mask,)

        return Tensor._make(data, (self,), backward)

    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        mask = self.data > 0
        data = np.where(mask, self.data, negative_slope * self.data).astype(self.data.dtype)

        def backward(grad):
            return (grad * np.where(mask, 1.0, negative_slope).astype(grad.dtype),)

        return Tensor._make(data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        data = np.clip(self.data, low, high)
        mask = (self.data >= low) & (self.data <= high)

        def backward(grad):
            return (grad * mask,)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)
        source_shape = self.shape

        def backward(grad):
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            return (np.broadcast_to(g, source_shape).astype(g.dtype),)

        return Tensor._make(data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.mean(axis=axis, keepdims=keepdims)
        source_shape = self.shape
        count = self.data.size if axis is None else np.prod(
            [source_shape[a] for a in (axis if isinstance(axis, tuple) else (axis,))]
        )

        def backward(grad):
            g = np.asarray(grad) / count
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            return (np.broadcast_to(g, source_shape).astype(g.dtype),)

        return Tensor._make(data, (self,), backward)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mean = self.mean(axis=axis, keepdims=True)
        centered = self - mean
        squared = centered * centered
        return squared.mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)
        source = self

        def backward(grad):
            g = np.asarray(grad)
            expanded = data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
                expanded = np.expand_dims(data, axis=axis)
            mask = source.data == expanded
            # Split gradient evenly between ties, matching numpy semantics of
            # "all maxima participate".
            counts = mask.sum(axis=axis, keepdims=True)
            return (mask * g / counts,)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)
        source_shape = self.shape

        def backward(grad):
            return (grad.reshape(source_shape),)

        return Tensor._make(data, (self,), backward)

    def flatten(self, start_dim: int = 1) -> "Tensor":
        lead = self.shape[:start_dim]
        return self.reshape(*lead, -1)

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        data = self.data.transpose(axes)
        inverse = tuple(np.argsort(axes))

        def backward(grad):
            return (grad.transpose(inverse),)

        return Tensor._make(data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]
        source_shape = self.shape
        source_dtype = self.data.dtype

        def backward(grad):
            full = np.zeros(source_shape, dtype=source_dtype)
            np.add.at(full, index, grad)
            return (full,)

        return Tensor._make(data, (self,), backward)

    def pad2d(self, padding: int | tuple[int, int]) -> "Tensor":
        """Zero-pad the last two (spatial) axes of an NCHW tensor."""
        if isinstance(padding, int):
            ph = pw = padding
        else:
            ph, pw = padding
        if ph == 0 and pw == 0:
            return self
        pad_width = [(0, 0)] * (self.ndim - 2) + [(ph, ph), (pw, pw)]
        data = np.pad(self.data, pad_width)

        def backward(grad):
            slicer = tuple(
                slice(None) for _ in range(self.ndim - 2)
            ) + (slice(ph, grad.shape[-2] - ph), slice(pw, grad.shape[-1] - pw))
            return (grad[slicer],)

        return Tensor._make(data, (self,), backward)

    @staticmethod
    def concatenate(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
        data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(grad):
            pieces = []
            for start, stop in zip(offsets[:-1], offsets[1:]):
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(start, stop)
                pieces.append(grad[tuple(slicer)])
            return tuple(pieces)

        return Tensor._make(data, tuple(tensors), backward)


# ----------------------------------------------------------------------
# factory helpers
# ----------------------------------------------------------------------
def tensor(data, requires_grad: bool = False, dtype=None) -> Tensor:
    """Create a :class:`Tensor` (convenience mirror of the constructor)."""
    return Tensor(data, requires_grad=requires_grad, dtype=dtype)


def zeros(*shape, requires_grad: bool = False, dtype=np.float32) -> Tensor:
    return Tensor(np.zeros(shape, dtype=dtype), requires_grad=requires_grad)


def ones(*shape, requires_grad: bool = False, dtype=np.float32) -> Tensor:
    return Tensor(np.ones(shape, dtype=dtype), requires_grad=requires_grad)


def randn(*shape, rng: np.random.Generator | None = None, requires_grad: bool = False) -> Tensor:
    rng = rng or np.random.default_rng()
    return Tensor(rng.standard_normal(shape).astype(np.float32), requires_grad=requires_grad)
