"""Gradient-based optimizers.

The paper trains its classifiers and inversion models with SGD (learning
rate 0.001 for the attack networks). Adam is included because it makes the
MLA input-optimisation attack converge in far fewer iterations, which
matters for the scaled-down CPU runs.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimizer over a list of parameter tensors."""

    def __init__(self, params: list[Tensor], lr: float):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.params = list(params)
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        params: list[Tensor],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ):
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity: list[np.ndarray | None] = [None] * len(self.params)

    def step(self) -> None:
        for i, param in enumerate(self.params):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                if self._velocity[i] is None:
                    self._velocity[i] = np.zeros_like(param.data)
                velocity = self._velocity[i]
                velocity *= self.momentum
                velocity += grad
                grad = grad + self.momentum * velocity if self.nesterov else velocity
            param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba 2015) with bias correction."""

    def __init__(
        self,
        params: list[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: list[np.ndarray | None] = [None] * len(self.params)
        self._v: list[np.ndarray | None] = [None] * len(self.params)
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for i, param in enumerate(self.params):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self._m[i] is None:
                self._m[i] = np.zeros_like(param.data)
                self._v[i] = np.zeros_like(param.data)
            m, v = self._m[i], self._v[i]
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
