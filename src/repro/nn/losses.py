"""Loss functions used across the reproduction.

``mse_loss`` is the workhorse: both the MLA objective
``||M_l(x̂) - M_l(x)||²`` and every term of DINA's distillation loss
(Eq. 1 of the paper) are (weighted) mean-squared distances.
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from .tensor import Tensor

__all__ = ["mse_loss", "l2_loss", "cross_entropy", "nll_loss"]


def mse_loss(prediction: Tensor, target: Tensor | np.ndarray) -> Tensor:
    """Mean squared error over all elements."""
    if not isinstance(target, Tensor):
        target = Tensor(target)
    diff = prediction - target
    return (diff * diff).mean()


def l2_loss(prediction: Tensor, target: Tensor | np.ndarray) -> Tensor:
    """Summed squared error ``||prediction - target||²₂`` (paper's notation)."""
    if not isinstance(target, Tensor):
        target = Tensor(target)
    diff = prediction - target
    return (diff * diff).sum()


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Softmax cross-entropy with integer class labels."""
    labels = np.asarray(labels)
    log_probs = F.log_softmax(logits, axis=-1)
    batch = logits.shape[0]
    picked = log_probs[np.arange(batch), labels]
    return -picked.mean()


def nll_loss(log_probs: Tensor, labels: np.ndarray) -> Tensor:
    labels = np.asarray(labels)
    batch = log_probs.shape[0]
    picked = log_probs[np.arange(batch), labels]
    return -picked.mean()
