"""Saving and loading model parameters as ``.npz`` archives."""

from __future__ import annotations

import os

import numpy as np

from .layers import Module

__all__ = ["save_model", "load_model"]


def save_model(model: Module, path: str) -> None:
    """Serialise a model's full state dict to a compressed ``.npz`` file."""
    state = model.state_dict()
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez_compressed(path, **state)


def load_model(model: Module, path: str) -> Module:
    """Load parameters saved by :func:`save_model` into ``model`` in place."""
    with np.load(path) as archive:
        state = {name: archive[name] for name in archive.files}
    model.load_state_dict(state)
    return model
