"""BFV-style RLWE homomorphic encryption with Cheetah's coefficient packing.

Cheetah evaluates linear layers by encoding activations and weights as
polynomial *coefficients* (not SIMD slots), so one negacyclic product
computes a whole matrix-vector product without any rotation keys. This
module implements the needed fragment of BFV:

* ring ``R_q = Z_q[x] / (x^n + 1)`` with power-of-two ``n``;
* secret/public key generation with ternary secrets and discrete-Gaussian
  errors;
* encryption, decryption, ciphertext addition, plaintext addition and
  plaintext-polynomial multiplication;
* the coefficient-packing encode/decode for matrix-vector products
  (:func:`encode_vector`, :func:`encode_matrix`, :func:`extract_matvec`).

Coefficient arithmetic uses Python integers (numpy ``object`` arrays), so
``q`` can be large enough (≥ 2^90) to support a ``t = 2^64`` plaintext ring
matching :mod:`repro.mpc.fixedpoint` — exactness over speed, which suits
the functional small-scale backends.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "RlweContext",
    "RlweKeyPair",
    "RlweCiphertext",
    "rlwe_keygen",
    "negacyclic_multiply",
    "encode_vector",
    "encode_matrix",
    "extract_matvec",
    "pack_matvec_plain",
]


def _centered(coeffs: np.ndarray, modulus: int) -> np.ndarray:
    """Map coefficients into the centered interval (-q/2, q/2]."""
    half = modulus // 2
    return np.array([c - modulus if c > half else c for c in coeffs], dtype=object)


def negacyclic_multiply(a: np.ndarray, b: np.ndarray, modulus: int) -> np.ndarray:
    """Product in ``Z_modulus[x] / (x^n + 1)`` (object-dtype schoolbook)."""
    n = len(a)
    if len(b) != n:
        raise ValueError("polynomial degrees differ")
    full = np.convolve(a, b)  # length 2n - 1, exact over Python ints
    folded = full[:n].copy()
    folded[: n - 1] -= full[n:]
    return np.array([int(c) % modulus for c in folded], dtype=object)


@dataclass(frozen=True)
class RlweContext:
    """Ring parameters. ``q`` must leave log2(q/t) headroom above the noise."""

    n: int = 1024
    q: int = 1 << 120
    t: int = 1 << 64
    sigma: float = 3.2

    def __post_init__(self):
        if self.n & (self.n - 1):
            raise ValueError("n must be a power of two")
        if self.q <= self.t:
            raise ValueError("q must exceed the plaintext modulus t")

    @property
    def delta(self) -> int:
        return self.q // self.t

    @property
    def ciphertext_bytes(self) -> int:
        """Serialised size of one ciphertext (two mod-q polynomials)."""
        return 2 * self.n * ((self.q.bit_length() + 7) // 8)

    # -- samplers -------------------------------------------------------
    def uniform_poly(self, rng: np.random.Generator) -> np.ndarray:
        words = (self.q.bit_length() + 62) // 63
        out = np.zeros(self.n, dtype=object)
        for i in range(self.n):
            raw = 0
            for w in range(words):
                raw |= int(rng.integers(0, 2**63)) << (63 * w)
            out[i] = raw % self.q
        return out

    def ternary_poly(self, rng: np.random.Generator) -> np.ndarray:
        return np.array([int(v) for v in rng.integers(-1, 2, self.n)], dtype=object)

    def error_poly(self, rng: np.random.Generator) -> np.ndarray:
        return np.array(
            [int(round(v)) for v in rng.normal(0.0, self.sigma, self.n)], dtype=object
        )


@dataclass(frozen=True)
class RlweKeyPair:
    context: RlweContext
    secret: np.ndarray  # ternary polynomial
    pk0: np.ndarray  # -(a·s + e) mod q
    pk1: np.ndarray  # a

    def encrypt(self, plain: np.ndarray, rng: np.random.Generator) -> "RlweCiphertext":
        """Encrypt a length-n plaintext polynomial with coefficients in Z_t."""
        ctx = self.context
        plain = np.array([int(c) % ctx.t for c in np.asarray(plain, dtype=object)], dtype=object)
        if len(plain) != ctx.n:
            raise ValueError(f"plaintext must have {ctx.n} coefficients")
        u = ctx.ternary_poly(rng)
        e1, e2 = ctx.error_poly(rng), ctx.error_poly(rng)
        c0 = (negacyclic_multiply(self.pk0, u, ctx.q) + e1 + ctx.delta * plain) % ctx.q
        c1 = (negacyclic_multiply(self.pk1, u, ctx.q) + e2) % ctx.q
        return RlweCiphertext(ctx, c0 % ctx.q, c1 % ctx.q)

    def decrypt(self, cipher: "RlweCiphertext") -> np.ndarray:
        """Decrypt to coefficients in ``[0, t)``; raises on noise overflow."""
        ctx = self.context
        raw = (cipher.c0 + negacyclic_multiply(cipher.c1, self.secret, ctx.q)) % ctx.q
        centered = _centered(raw, ctx.q)
        out = np.zeros(ctx.n, dtype=object)
        for i, value in enumerate(centered):
            scaled, remainder = divmod(int(value) * ctx.t + ctx.q // 2, ctx.q)
            del remainder
            out[i] = scaled % ctx.t
        return out


@dataclass(frozen=True)
class RlweCiphertext:
    context: RlweContext
    c0: np.ndarray
    c1: np.ndarray

    def __add__(self, other: "RlweCiphertext") -> "RlweCiphertext":
        ctx = self.context
        return RlweCiphertext(ctx, (self.c0 + other.c0) % ctx.q, (self.c1 + other.c1) % ctx.q)

    def add_plain(self, plain: np.ndarray) -> "RlweCiphertext":
        """Add a plaintext polynomial (coefficients in Z_t)."""
        ctx = self.context
        plain = np.array([int(c) % ctx.t for c in np.asarray(plain, dtype=object)], dtype=object)
        return RlweCiphertext(ctx, (self.c0 + ctx.delta * plain) % ctx.q, self.c1)

    def mul_plain(self, plain: np.ndarray) -> "RlweCiphertext":
        """Multiply by a plaintext polynomial with *centered* coefficients.

        The multiplier's coefficients must be small signed integers (e.g.
        centered representatives from :func:`encode_matrix`): noise grows
        with their absolute magnitude, so they are deliberately NOT reduced
        into [0, q) before the convolution.
        """
        ctx = self.context
        plain = np.asarray(plain, dtype=object)
        return RlweCiphertext(
            ctx,
            negacyclic_multiply(self.c0, plain, ctx.q),
            negacyclic_multiply(self.c1, plain, ctx.q),
        )


def rlwe_keygen(context: RlweContext, rng: np.random.Generator) -> RlweKeyPair:
    """Sample (secret, public) keys for the given ring."""
    s = context.ternary_poly(rng)
    a = context.uniform_poly(rng)
    e = context.error_poly(rng)
    pk0 = (-(negacyclic_multiply(a, s, context.q) + e)) % context.q
    return RlweKeyPair(context=context, secret=s, pk0=pk0, pk1=a)


# ----------------------------------------------------------------------
# Cheetah coefficient packing for y = W @ x
# ----------------------------------------------------------------------
def encode_vector(x: np.ndarray, n: int) -> np.ndarray:
    """Input packing: coefficient ``j`` carries ``x[j]``."""
    x = np.asarray(x)
    if x.size > n:
        raise ValueError(f"vector of {x.size} does not fit ring dimension {n}")
    out = np.zeros(n, dtype=object)
    for j, value in enumerate(x.reshape(-1)):
        out[j] = int(value)
    return out


def encode_matrix(weights: np.ndarray, n: int, t: int) -> np.ndarray:
    """Weight packing: row ``r`` lands at coefficients ``r·i .. r·i+i-1``.

    With ``w_poly[r·i + (i-1-j)] = W[r, j]``, the negacyclic product with
    :func:`encode_vector` places ``dot(W[r], x)`` at coefficient
    ``r·i + i - 1`` — provided ``o·i <= n`` so nothing wraps around.
    Coefficients are *centered* mod ``t``: ring-encoded negative weights
    come out as small signed integers, keeping the noise growth of
    :meth:`RlweCiphertext.mul_plain` proportional to the true weight
    magnitude rather than to ``t``.
    """
    o, i = weights.shape
    if o * i > n:
        raise ValueError(f"matrix {o}x{i} exceeds ring dimension {n}")
    half = t // 2
    out = np.zeros(n, dtype=object)
    for r in range(o):
        for j in range(i):
            value = int(weights[r, j]) % t
            out[r * i + (i - 1 - j)] = value - t if value > half else value
    return out


def extract_matvec(product: np.ndarray, o: int, i: int, t: int) -> np.ndarray:
    """Read the ``o`` dot products out of the packed product polynomial."""
    return np.array([int(product[r * i + i - 1]) % t for r in range(o)], dtype=object)


def pack_matvec_plain(weights: np.ndarray, x: np.ndarray, n: int, t: int) -> np.ndarray:
    """Plaintext reference of the packed computation (for tests/benches)."""
    o, i = weights.shape
    w_poly = encode_matrix(weights, n, t)
    x_poly = encode_vector(x, n)
    product = negacyclic_multiply(w_poly, x_poly, t)
    return extract_matvec(product, o, i, t)
