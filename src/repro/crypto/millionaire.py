"""OT-based comparison, DReLU and ReLU — Cheetah/CrypTFlow2's non-linear stack.

Cheetah replaces Delphi's garbled circuits with oblivious-transfer
protocols. The chain implemented here, batched over activation arrays:

1. :func:`millionaire_compare` — the radix-``2^m`` millionaires' protocol
   of CrypTFlow2: leaf (gt, eq) bits per block through 1-of-``2^m`` OTs,
   combined MSB-first with AND gates on XOR shares;
2. :func:`secure_drelu_ot` — reduces ``msb(x0 + x1)`` to one millionaire
   carry computation: ``msb(x) = msb(x0) ⊕ msb(x1) ⊕ carry`` with
   ``carry = 1{low63(x0) > 2^63 - 1 - low63(x1)}``;
3. :func:`b2a_via_ot` — boolean-to-arithmetic share conversion through one
   correlated OT per bit;
4. :func:`secure_mux_via_ot` — multiplexing ``b·x`` with two OTs per
   element (one in each direction);
5. :func:`secure_relu_ot` — DReLU then mux, yielding fresh additive shares
   of ``ReLU(x)``.

Unlike the dealer-based protocols in :mod:`repro.mpc.protocols`, nothing
here consumes trusted preprocessing: every correlated bit is produced by
the IKNP sessions, so the byte counts on the channel reflect a complete
(semi-honest) two-party execution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # Channel is used only in annotations; a runtime
    # import would create a cycle through repro.mpc's engine/backends.
    from ..mpc.network import Channel
from .otext import IknpOtExtension
from .prg import hash_label, xor_bytes

__all__ = [
    "OtSessionPair",
    "ot_bit_triples",
    "and_xor_shares",
    "one_of_n_ot",
    "millionaire_compare",
    "secure_drelu_ot",
    "b2a_via_ot",
    "secure_mux_via_ot",
    "secure_relu_ot",
]


@dataclass
class OtSessionPair:
    """One IKNP session per direction (both parties act as sender once)."""

    server_sends: IknpOtExtension  # server = sender (party 1)
    client_sends: IknpOtExtension  # client = sender (party 0)

    @classmethod
    def create(
        cls, rng: np.random.Generator, channel: Channel | None, security: int = 128
    ) -> "OtSessionPair":
        return cls(
            server_sends=IknpOtExtension(rng, channel, sender=1, security=security),
            client_sends=IknpOtExtension(rng, channel, sender=0, security=security),
        )


def _bit_bytes(bits: np.ndarray) -> list[bytes]:
    return [bytes([int(b) & 1]) for b in bits]


def ot_bit_triples(
    sessions: OtSessionPair, count: int, rng: np.random.Generator
) -> tuple[tuple[np.ndarray, np.ndarray], tuple[np.ndarray, np.ndarray], tuple[np.ndarray, np.ndarray]]:
    """Generate XOR-shared AND triples ``c = a ∧ b`` from two OT batches.

    Returns ``((a0, a1), (b0, b1), (c0, c1))`` uint8 arrays. The two cross
    terms ``a0·b1`` and ``a1·b0`` each consume one OT (Gilboa's product
    sharing specialised to bits).
    """
    a0 = rng.integers(0, 2, count, dtype=np.uint8)
    b0 = rng.integers(0, 2, count, dtype=np.uint8)
    a1 = rng.integers(0, 2, count, dtype=np.uint8)
    b1 = rng.integers(0, 2, count, dtype=np.uint8)
    # a0·b1 — server sends (t, t ⊕ b1); client chooses with a0.
    t = rng.integers(0, 2, count, dtype=np.uint8)
    received0 = sessions.server_sends.transfer(
        _bit_bytes(t), _bit_bytes(t ^ b1), a0
    )
    p0 = np.array([m[0] & 1 for m in received0], dtype=np.uint8)  # t ⊕ a0·b1
    # a1·b0 — client sends (u, u ⊕ b0); server chooses with a1.
    u = rng.integers(0, 2, count, dtype=np.uint8)
    received1 = sessions.client_sends.transfer(
        _bit_bytes(u), _bit_bytes(u ^ b0), a1
    )
    q1 = np.array([m[0] & 1 for m in received1], dtype=np.uint8)  # u ⊕ a1·b0
    c0 = (a0 & b0) ^ p0 ^ u
    c1 = (a1 & b1) ^ t ^ q1
    return (a0, a1), (b0, b1), (c0, c1)


def and_xor_shares(
    x: tuple[np.ndarray, np.ndarray],
    y: tuple[np.ndarray, np.ndarray],
    triples,
    channel: Channel | None,
) -> tuple[np.ndarray, np.ndarray]:
    """AND of XOR-shared bit arrays using Beaver bit triples.

    Opens ``d = x ⊕ a`` and ``e = y ⊕ b`` (one exchange round), then
    ``z = c ⊕ d·b ⊕ e·a ⊕ d·e`` with party 0 adding the public ``d·e``.
    """
    (a0, a1), (b0, b1), (c0, c1) = triples
    d = (x[0] ^ a0) ^ (x[1] ^ a1)
    e = (y[0] ^ b0) ^ (y[1] ^ b1)
    if channel is not None:
        opened = 2 * ((d.size + 7) // 8)
        channel.exchange(opened, label="bit-open")
    z0 = c0 ^ (d & b0) ^ (e & a0) ^ (d & e)
    z1 = c1 ^ (d & b1) ^ (e & a1)
    return z0, z1


def one_of_n_ot(
    session: IknpOtExtension,
    tables: np.ndarray,
    choices: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Batched 1-of-N OT for byte entries, built from ``log2 N`` 1-of-2 OTs.

    ``tables`` has shape (instances, N); ``choices`` holds one index per
    instance. Per instance the sender samples ``log2 N`` key pairs; entry
    ``v`` is encrypted under the combination of keys matching ``v``'s bits,
    and the receiver decrypts exactly its chosen entry.
    """
    instances, n_entries = tables.shape
    digits = int(np.log2(n_entries))
    if 2**digits != n_entries:
        raise ValueError("table width must be a power of two")
    keys0: list[list[bytes]] = []
    keys1: list[list[bytes]] = []
    flat0: list[bytes] = []
    flat1: list[bytes] = []
    flat_choices = np.zeros(instances * digits, dtype=np.uint8)
    for i in range(instances):
        k0 = [hash_label(rng.bytes(16), tweak=2 * j) for j in range(digits)]
        k1 = [hash_label(rng.bytes(16), tweak=2 * j + 1) for j in range(digits)]
        keys0.append(k0)
        keys1.append(k1)
        for j in range(digits):
            flat0.append(k0[j])
            flat1.append(k1[j])
            flat_choices[i * digits + j] = (int(choices[i]) >> j) & 1
    received_keys = session.transfer(flat0, flat1, flat_choices)

    payload = 0
    out = np.zeros(instances, dtype=np.uint8)
    for i in range(instances):
        ciphertexts = []
        for v in range(n_entries):
            key_material = b"".join(
                (keys1[i][j] if (v >> j) & 1 else keys0[i][j]) for j in range(digits)
            )
            pad = hash_label(key_material, tweak=v, out_bytes=1)
            ciphertexts.append(xor_bytes(bytes([int(tables[i, v]) & 0xFF]), pad))
        payload += n_entries
        v = int(choices[i])
        chosen_material = b"".join(received_keys[i * digits + j] for j in range(digits))
        pad = hash_label(chosen_material, tweak=v, out_bytes=1)
        out[i] = xor_bytes(ciphertexts[v], pad)[0]
    if session.channel is not None:
        session.channel.send(session.sender, payload, label="1ofN-entries")
        session.channel.tick_round("1ofN-entries")
    return out


def millionaire_compare(
    x_client: np.ndarray,
    y_server: np.ndarray,
    sessions: OtSessionPair,
    rng: np.random.Generator,
    bits: int = 63,
    block_bits: int = 4,
) -> tuple[np.ndarray, np.ndarray]:
    """XOR shares of ``1{x > y}`` where the client holds x, the server y.

    The CrypTFlow2 recursion, MSB-first over ``ceil(bits / block_bits)``
    radix blocks: ``gt = gt_hi ⊕ (eq_hi ∧ gt_lo)``.
    """
    x_client = np.asarray(x_client, dtype=np.uint64).reshape(-1)
    y_server = np.asarray(y_server, dtype=np.uint64).reshape(-1)
    count = x_client.size
    blocks = (bits + block_bits - 1) // block_bits
    n_entries = 1 << block_bits
    channel = sessions.server_sends.channel

    # Leaf tables: server masks 1{v > y_blk} and 1{v == y_blk} with its
    # random share bits; the client obliviously fetches entry x_blk.
    gt_server = rng.integers(0, 2, (count, blocks), dtype=np.uint8)
    eq_server = rng.integers(0, 2, (count, blocks), dtype=np.uint8)
    tables = np.zeros((count * blocks, n_entries), dtype=np.uint8)
    choices = np.zeros(count * blocks, dtype=np.uint8)
    for i in range(count):
        for blk in range(blocks):
            shift = np.uint64(blk * block_bits)
            mask = np.uint64(n_entries - 1)
            y_blk = int((y_server[i] >> shift) & mask)
            x_blk = int((x_client[i] >> shift) & mask)
            row = i * blocks + blk
            choices[row] = x_blk
            for v in range(n_entries):
                gt_bit = (1 if v > y_blk else 0) ^ int(gt_server[i, blk])
                eq_bit = (1 if v == y_blk else 0) ^ int(eq_server[i, blk])
                tables[row, v] = gt_bit | (eq_bit << 1)
    fetched = one_of_n_ot(sessions.server_sends, tables, choices, rng)
    gt_client = (fetched & 1).reshape(count, blocks)
    eq_client = ((fetched >> 1) & 1).reshape(count, blocks)

    # MSB-first fold: two ANDs per merge step, batched across elements.
    gt = (gt_client[:, blocks - 1].copy(), gt_server[:, blocks - 1].copy())
    eq = (eq_client[:, blocks - 1].copy(), eq_server[:, blocks - 1].copy())
    for blk in range(blocks - 2, -1, -1):
        lower_gt = (gt_client[:, blk], gt_server[:, blk])
        lower_eq = (eq_client[:, blk], eq_server[:, blk])
        masked = and_xor_shares(
            eq, lower_gt, ot_bit_triples(sessions, count, rng), channel
        )
        gt = (gt[0] ^ masked[0], gt[1] ^ masked[1])
        if blk > 0:  # the final eq is never used again
            eq = and_xor_shares(
                eq, lower_eq, ot_bit_triples(sessions, count, rng), channel
            )
    return gt


def secure_drelu_ot(
    shares: tuple[np.ndarray, np.ndarray],
    sessions: OtSessionPair,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """XOR shares of ``DReLU(x) = 1{x >= 0}`` over Z_2^64 from one carry.

    ``msb(x0 + x1) = msb(x0) ⊕ msb(x1) ⊕ carry`` where the carry out of
    the low 63 bits is ``1{a > 2^63 - 1 - b}`` — one millionaire instance
    with the client holding ``a = low63(x0)``.
    """
    x0 = np.asarray(shares[0], dtype=np.uint64).reshape(-1)
    x1 = np.asarray(shares[1], dtype=np.uint64).reshape(-1)
    low_mask = np.uint64((1 << 63) - 1)
    a = x0 & low_mask
    complement = (low_mask - (x1 & low_mask)).astype(np.uint64)
    carry = millionaire_compare(a, complement, sessions, rng, bits=63)
    msb0 = (x0 >> np.uint64(63)).astype(np.uint8)
    msb1 = (x1 >> np.uint64(63)).astype(np.uint8)
    # drelu = NOT msb: client folds the constant 1 into its share.
    return (msb0 ^ carry[0] ^ 1, msb1 ^ carry[1])


def _uint64_bytes(values: np.ndarray) -> list[bytes]:
    return [int(v).to_bytes(8, "little") for v in np.asarray(values, dtype=np.uint64)]


def b2a_via_ot(
    bit_shares: tuple[np.ndarray, np.ndarray],
    sessions: OtSessionPair,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Convert XOR-shared bits to additive shares over Z_2^64.

    ``b = b0 + b1 - 2·b0·b1``; the cross product comes from one OT where
    the server offers ``(t, t + b1)`` and the client selects with ``b0``.
    """
    b0 = np.asarray(bit_shares[0], dtype=np.uint8).reshape(-1)
    b1 = np.asarray(bit_shares[1], dtype=np.uint8).reshape(-1)
    t = rng.integers(0, 2**63, b0.size, dtype=np.uint64)
    plus = (t + b1.astype(np.uint64)).astype(np.uint64)
    received = sessions.server_sends.transfer(_uint64_bytes(t), _uint64_bytes(plus), b0)
    cross_client = np.array(
        [int.from_bytes(m, "little") for m in received], dtype=np.uint64
    )  # t + b0·b1
    two = np.uint64(2)
    y0 = (b0.astype(np.uint64) - two * cross_client).astype(np.uint64)
    y1 = (b1.astype(np.uint64) + two * t).astype(np.uint64)
    return y0, y1


def secure_mux_via_ot(
    value_shares: tuple[np.ndarray, np.ndarray],
    bit_shares: tuple[np.ndarray, np.ndarray],
    sessions: OtSessionPair,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Additive shares of ``b · x`` (b XOR-shared, x additively shared).

    Two OTs per element: each party offers ``(b_i·x_i - r_i,
    (1-b_i)·x_i - r_i)`` and the other selects with its own bit, learning
    ``(b0 ⊕ b1)·x_i - r_i``.
    """
    x0 = np.asarray(value_shares[0], dtype=np.uint64).reshape(-1)
    x1 = np.asarray(value_shares[1], dtype=np.uint64).reshape(-1)
    b0 = np.asarray(bit_shares[0], dtype=np.uint8).reshape(-1)
    b1 = np.asarray(bit_shares[1], dtype=np.uint8).reshape(-1)

    # Server offers the function of (b1, x1); client picks with b0.
    r1 = rng.integers(0, 2**63, x1.size, dtype=np.uint64)
    m0 = (b1.astype(np.uint64) * x1 - r1).astype(np.uint64)  # b0 = 0 -> b = b1
    m1 = ((1 - b1).astype(np.uint64) * x1 - r1).astype(np.uint64)
    got0 = sessions.server_sends.transfer(_uint64_bytes(m0), _uint64_bytes(m1), b0)
    v_client = np.array([int.from_bytes(m, "little") for m in got0], dtype=np.uint64)

    # Client offers the function of (b0, x0); server picks with b1.
    r0 = rng.integers(0, 2**63, x0.size, dtype=np.uint64)
    m0c = (b0.astype(np.uint64) * x0 - r0).astype(np.uint64)
    m1c = ((1 - b0).astype(np.uint64) * x0 - r0).astype(np.uint64)
    got1 = sessions.client_sends.transfer(_uint64_bytes(m0c), _uint64_bytes(m1c), b1)
    v_server = np.array([int.from_bytes(m, "little") for m in got1], dtype=np.uint64)

    y0 = (v_client + r0).astype(np.uint64)
    y1 = (v_server + r1).astype(np.uint64)
    return y0, y1


def secure_relu_ot(
    shares: tuple[np.ndarray, np.ndarray],
    sessions: OtSessionPair,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Cheetah-style ReLU: OT DReLU followed by an OT multiplexer."""
    original_shape = np.asarray(shares[0]).shape
    flat = (np.asarray(shares[0]).reshape(-1), np.asarray(shares[1]).reshape(-1))
    drelu = secure_drelu_ot(flat, sessions, rng)
    y0, y1 = secure_mux_via_ot(flat, drelu, sessions, rng)
    return y0.reshape(original_shape), y1.reshape(original_shape)
