"""Hash-based pseudorandom generation and the garbling KDF.

Both the OT extension and the garbling scheme need a length-extendable PRG
and a tweakable hash. We build both from ``blake2b`` (available in
``hashlib`` everywhere, no OpenSSL dependency): the PRG runs blake2b in
counter mode under a fixed seed, and :func:`hash_label` implements the
tweakable KDF ``H(label_a [, label_b], tweak)`` used to derive garbled-table
pads and OT message pads.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["PRG", "hash_label", "xor_bytes", "LABEL_BYTES"]

#: Size of wire labels and OT pads (128-bit security level).
LABEL_BYTES = 16

_BLOCK_BYTES = 64  # blake2b output size


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """XOR two equal-length byte strings."""
    if len(a) != len(b):
        raise ValueError(f"xor_bytes length mismatch: {len(a)} vs {len(b)}")
    return (int.from_bytes(a, "little") ^ int.from_bytes(b, "little")).to_bytes(
        len(a), "little"
    )


def hash_label(*parts: bytes, tweak: int = 0, out_bytes: int = LABEL_BYTES) -> bytes:
    """Tweakable hash ``H(parts, tweak)`` truncated to ``out_bytes``.

    The tweak (gate id, OT index, ...) is folded into the blake2b *person*
    slot-equivalent by prefixing it to the message, which suffices for the
    semi-honest random-oracle usage here.
    """
    # Fixed 64-byte digests truncated to out_bytes, so outputs of different
    # lengths under the same inputs are prefix-consistent.
    h = hashlib.blake2b(digest_size=_BLOCK_BYTES)
    h.update(tweak.to_bytes(8, "little", signed=False))
    for part in parts:
        h.update(len(part).to_bytes(4, "little"))
        h.update(part)
    digest = h.digest()
    while len(digest) < out_bytes:  # extend for long pads
        h = hashlib.blake2b(digest_size=_BLOCK_BYTES)
        h.update(digest)
        digest += h.digest()
    return digest[:out_bytes]


class PRG:
    """blake2b counter-mode PRG.

    A ``PRG`` is deterministic in its seed: two instances built from the
    same seed produce identical streams. That property is what the IKNP
    extension exploits (both parties expand the same base-OT seed).
    """

    def __init__(self, seed: bytes | int):
        if isinstance(seed, int):
            seed = seed.to_bytes(32, "little", signed=False)
        if not isinstance(seed, (bytes, bytearray)):
            raise TypeError(f"seed must be bytes or int, got {type(seed).__name__}")
        self._seed = bytes(seed)
        self._counter = 0

    def bytes(self, n: int) -> bytes:
        """Next ``n`` pseudorandom bytes."""
        if n < 0:
            raise ValueError("cannot generate a negative number of bytes")
        out = bytearray()
        while len(out) < n:
            h = hashlib.blake2b(self._seed, digest_size=_BLOCK_BYTES)
            h.update(self._counter.to_bytes(8, "little"))
            out += h.digest()
            self._counter += 1
        return bytes(out[:n])

    def bits(self, n: int) -> np.ndarray:
        """Next ``n`` pseudorandom bits as a uint8 0/1 array."""
        raw = np.frombuffer(self.bytes((n + 7) // 8), dtype=np.uint8)
        return np.unpackbits(raw, bitorder="little")[:n].copy()

    def uint64(self, shape) -> np.ndarray:
        """Pseudorandom uint64 array of the given shape."""
        count = int(np.prod(shape)) if shape else 1
        raw = np.frombuffer(self.bytes(8 * count), dtype=np.uint64)
        return raw.reshape(shape).copy()

    def integer(self, bits: int) -> int:
        """Pseudorandom integer with at most ``bits`` bits."""
        if bits <= 0:
            raise ValueError("bits must be positive")
        raw = int.from_bytes(self.bytes((bits + 7) // 8), "little")
        return raw & ((1 << bits) - 1)

    def label(self) -> bytes:
        """A fresh :data:`LABEL_BYTES`-byte wire label / key."""
        return self.bytes(LABEL_BYTES)
