"""Boolean circuits for garbling: XOR/AND/INV gates plus arithmetic builders.

Delphi evaluates ReLU inside a garbled circuit that (1) reconstructs the
value from the two additive shares with a ripple-carry adder, (2) derives
the DReLU bit from the sign, (3) multiplexes the value against zero and
(4) re-masks the result with the garbler's fresh share. The builders here
produce exactly that circuit (:func:`relu_share_circuit`), in a gate basis
chosen for free-XOR garbling: only AND gates cost communication.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "Gate",
    "Circuit",
    "add_mod_2k",
    "relu_share_circuit",
    "drelu_share_circuit",
    "evaluate_plain",
    "bits_of",
    "int_of",
]


@dataclass(frozen=True)
class Gate:
    """One gate: ``op`` in {"XOR", "AND", "INV"}; INV ignores ``b``."""

    op: str
    a: int
    b: int
    out: int


@dataclass
class Circuit:
    """A straight-line boolean circuit over numbered wires.

    Wires are allocated densely: inputs first (garbler then evaluator),
    then one wire per gate output. ``outputs`` lists the wires whose values
    the evaluator may decode.
    """

    garbler_inputs: list[int] = field(default_factory=list)
    evaluator_inputs: list[int] = field(default_factory=list)
    gates: list[Gate] = field(default_factory=list)
    outputs: list[int] = field(default_factory=list)
    n_wires: int = 0

    # -- wire allocation -------------------------------------------------
    def new_garbler_input(self) -> int:
        wire = self._alloc()
        self.garbler_inputs.append(wire)
        return wire

    def new_evaluator_input(self) -> int:
        wire = self._alloc()
        self.evaluator_inputs.append(wire)
        return wire

    def _alloc(self) -> int:
        wire = self.n_wires
        self.n_wires += 1
        return wire

    # -- gate builders ----------------------------------------------------
    def xor(self, a: int, b: int) -> int:
        out = self._alloc()
        self.gates.append(Gate("XOR", a, b, out))
        return out

    def and_(self, a: int, b: int) -> int:
        out = self._alloc()
        self.gates.append(Gate("AND", a, b, out))
        return out

    def inv(self, a: int) -> int:
        out = self._alloc()
        self.gates.append(Gate("INV", a, a, out))
        return out

    @property
    def and_count(self) -> int:
        """Number of AND gates — the only gates with garbling cost."""
        return sum(1 for g in self.gates if g.op == "AND")


def add_mod_2k(circuit: Circuit, xs: list[int], ys: list[int]) -> list[int]:
    """Ripple-carry addition modulo ``2^k`` (little-endian wire lists).

    Uses the one-AND full adder: ``sum = a ⊕ b ⊕ c`` and
    ``carry' = ((a ⊕ c) ∧ (b ⊕ c)) ⊕ c``. The final carry is dropped.
    """
    if len(xs) != len(ys):
        raise ValueError("operand widths differ")
    k = len(xs)
    sums: list[int] = []
    carry: int | None = None
    for i in range(k):
        a, b = xs[i], ys[i]
        if carry is None:
            sums.append(circuit.xor(a, b))
            if i < k - 1:
                carry = circuit.and_(a, b)
        else:
            a_xor_c = circuit.xor(a, carry)
            b_xor_c = circuit.xor(b, carry)
            sums.append(circuit.xor(a_xor_c, b))  # a ⊕ cin ⊕ b
            if i < k - 1:
                carry = circuit.xor(circuit.and_(a_xor_c, b_xor_c), carry)
    return sums


def relu_share_circuit(bits: int) -> Circuit:
    """Delphi's ReLU-on-shares circuit over a ``2^bits`` ring.

    Inputs: garbler share ``a`` and fresh output mask ``r`` (garbler wires),
    evaluator share ``b``. The circuit computes ``x = a + b``,
    ``y = x if x >= 0 else 0`` (two's-complement sign test) and outputs
    ``y + r`` — the evaluator's fresh additive share; the garbler keeps
    ``-r``. AND-gate count: ``3·bits - 2``.
    """
    circuit = Circuit()
    a = [circuit.new_garbler_input() for _ in range(bits)]
    r = [circuit.new_garbler_input() for _ in range(bits)]
    b = [circuit.new_evaluator_input() for _ in range(bits)]
    x = add_mod_2k(circuit, a, b)
    keep = circuit.inv(x[-1])  # sign bit 0 -> keep the value
    y = [circuit.and_(bit, keep) for bit in x]
    masked = add_mod_2k(circuit, y, r)
    circuit.outputs = masked
    return circuit


def drelu_share_circuit(bits: int) -> Circuit:
    """DReLU only: outputs the single bit ``1{a + b >= 0}`` re-masked.

    Inputs: garbler share ``a`` and a one-bit mask ``m``; evaluator share
    ``b``. Output: ``drelu ⊕ m`` so neither party alone learns the sign.
    """
    circuit = Circuit()
    a = [circuit.new_garbler_input() for _ in range(bits)]
    mask = circuit.new_garbler_input()
    b = [circuit.new_evaluator_input() for _ in range(bits)]
    x = add_mod_2k(circuit, a, b)
    keep = circuit.inv(x[-1])
    circuit.outputs = [circuit.xor(keep, mask)]
    return circuit


def evaluate_plain(circuit: Circuit, assignment: dict[int, int]) -> list[int]:
    """Evaluate the circuit on a plaintext 0/1 assignment of input wires."""
    values = dict(assignment)
    missing = [w for w in (*circuit.garbler_inputs, *circuit.evaluator_inputs)
               if w not in values]
    if missing:
        raise ValueError(f"unassigned input wires: {missing[:8]}")
    for gate in circuit.gates:
        if gate.op == "XOR":
            values[gate.out] = values[gate.a] ^ values[gate.b]
        elif gate.op == "AND":
            values[gate.out] = values[gate.a] & values[gate.b]
        elif gate.op == "INV":
            values[gate.out] = 1 - values[gate.a]
        else:  # pragma: no cover - gate ops are fixed at construction
            raise ValueError(f"unknown gate op {gate.op!r}")
    return [values[w] for w in circuit.outputs]


def bits_of(value: int, bits: int) -> np.ndarray:
    """Little-endian bit vector of ``value`` (helper for tests/protocols)."""
    return np.array([(value >> i) & 1 for i in range(bits)], dtype=np.uint8)


def int_of(bit_list) -> int:
    """Inverse of :func:`bits_of`."""
    return int(sum(int(b) << i for i, b in enumerate(bit_list)))
