"""Paillier additively homomorphic encryption.

Delphi's preprocessing has the client send ``Enc(mask)`` so the server can
homomorphically evaluate its linear layer on the mask and return
``Enc(W·mask + s)``. Paillier supports exactly the operations that takes:
ciphertext addition and plaintext-scalar multiplication.

Implementation notes
--------------------
* ``g = n + 1`` so encryption needs no extra exponentiation:
  ``Enc(m; r) = (1 + m·n) · r^n  (mod n²)``.
* Decryption uses the CRT over ``p², q²`` for a ~4x speedup.
* Plaintexts live in ``Z_n``; signed values are mapped two's-complement
  style (values above ``n // 2`` decode as negative) by
  :meth:`PaillierSecretKey.decrypt_signed`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .numbertheory import crt_pair, generate_prime, lcm, modinv

__all__ = [
    "PaillierPublicKey",
    "PaillierSecretKey",
    "PaillierKeyPair",
    "PaillierCiphertext",
    "paillier_keygen",
]


@dataclass(frozen=True)
class PaillierPublicKey:
    """Encryption key: the modulus (``g = n + 1`` is implicit)."""

    n: int

    @property
    def n_squared(self) -> int:
        return self.n * self.n

    @property
    def ciphertext_bytes(self) -> int:
        """Serialised size of one ciphertext (an element of Z_n²)."""
        return (self.n_squared.bit_length() + 7) // 8

    def encrypt(self, message: int, rng: np.random.Generator) -> "PaillierCiphertext":
        """Encrypt ``message`` (reduced into Z_n) with fresh randomness."""
        n, n2 = self.n, self.n_squared
        message %= n
        while True:
            r = int.from_bytes(
                rng.integers(0, 2**63, (n.bit_length() + 62) // 63, dtype=np.uint64).tobytes(),
                "little",
            ) % n
            if r > 1:
                break
        cipher = (1 + message * n) % n2 * pow(r, n, n2) % n2
        return PaillierCiphertext(self, cipher)

    def encrypt_signed(self, value: int, rng: np.random.Generator) -> "PaillierCiphertext":
        """Encrypt a (possibly negative) integer two's-complement style."""
        return self.encrypt(value % self.n, rng)


@dataclass(frozen=True)
class PaillierSecretKey:
    """Decryption key with CRT accelerators."""

    public: PaillierPublicKey
    p: int
    q: int
    lam: int
    mu: int

    def decrypt(self, cipher: "PaillierCiphertext") -> int:
        """Decrypt to a representative in ``[0, n)``."""
        if cipher.public.n != self.public.n:
            raise ValueError("ciphertext was encrypted under a different key")
        n = self.public.n
        p2, q2 = self.p * self.p, self.q * self.q
        cp = pow(cipher.value % p2, self.lam, p2)
        cq = pow(cipher.value % q2, self.lam, q2)
        c_lam = crt_pair(cp % p2, cq % q2, p2, q2)
        ell = (c_lam - 1) // n
        return ell * self.mu % n

    def decrypt_signed(self, cipher: "PaillierCiphertext") -> int:
        """Decrypt, mapping the upper half of Z_n to negative integers."""
        value = self.decrypt(cipher)
        return value - self.public.n if value > self.public.n // 2 else value


@dataclass(frozen=True)
class PaillierKeyPair:
    public: PaillierPublicKey
    secret: PaillierSecretKey


@dataclass(frozen=True)
class PaillierCiphertext:
    """An element of Z_n² supporting the additive homomorphism."""

    public: PaillierPublicKey
    value: int

    def __add__(self, other: "PaillierCiphertext") -> "PaillierCiphertext":
        if self.public.n != other.public.n:
            raise ValueError("cannot add ciphertexts under different keys")
        return PaillierCiphertext(self.public, self.value * other.value % self.public.n_squared)

    def add_plain(self, plain: int) -> "PaillierCiphertext":
        """Homomorphically add a plaintext integer."""
        n, n2 = self.public.n, self.public.n_squared
        return PaillierCiphertext(self.public, self.value * (1 + (plain % n) * n) % n2)

    def mul_plain(self, scalar: int) -> "PaillierCiphertext":
        """Homomorphically multiply by a plaintext integer."""
        n2 = self.public.n_squared
        return PaillierCiphertext(self.public, pow(self.value, scalar % self.public.n, n2))

    def __neg__(self) -> "PaillierCiphertext":
        return PaillierCiphertext(
            self.public, modinv(self.value, self.public.n_squared)
        )


def paillier_keygen(bits: int, rng: np.random.Generator) -> PaillierKeyPair:
    """Generate a key pair with an approximately ``bits``-bit modulus.

    512-bit keys are plenty for the in-process functional backends; real
    deployments would use 2048+.
    """
    if bits < 64:
        raise ValueError("modulus below 64 bits cannot hold fixed-point products")
    while True:
        p = generate_prime(bits // 2, rng)
        q = generate_prime(bits - bits // 2, rng)
        if p != q:
            break
    n = p * q
    lam = lcm(p - 1, q - 1)
    public = PaillierPublicKey(n)
    # mu = (L(g^lam mod n^2))^-1 mod n with g = n + 1: L(g^lam) = lam mod n.
    mu = modinv(lam % n, n)
    secret = PaillierSecretKey(public=public, p=p, q=q, lam=lam, mu=mu)
    return PaillierKeyPair(public=public, secret=secret)
