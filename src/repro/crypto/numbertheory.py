"""Number-theoretic helpers: primality, prime generation, modular inverse.

Supports :mod:`~repro.crypto.paillier` (RSA-style modulus generation) and
:mod:`~repro.crypto.baseot` (group parameter validation). Pure Python over
arbitrary-precision ints.
"""

from __future__ import annotations

import numpy as np

__all__ = ["is_probable_prime", "generate_prime", "modinv", "lcm", "crt_pair"]

# Deterministic Miller-Rabin witness sets (Sinclair/Jaeschke bounds).
_DETERMINISTIC_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)
_DETERMINISTIC_BOUND = 3_317_044_064_679_887_385_961_981

_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
)


def _miller_rabin(n: int, witness: int) -> bool:
    """One Miller-Rabin round; True means "possibly prime"."""
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    x = pow(witness % n, d, n)
    if x in (1, n - 1):
        return True
    for _ in range(r - 1):
        x = x * x % n
        if x == n - 1:
            return True
    return False


def is_probable_prime(n: int, rng: np.random.Generator | None = None, rounds: int = 24) -> bool:
    """Miller-Rabin primality test.

    Deterministic (and exact) below ~3.3e24 using the fixed witness set;
    probabilistic with ``rounds`` random witnesses above it.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    if n < _DETERMINISTIC_BOUND:
        return all(_miller_rabin(n, w) for w in _DETERMINISTIC_WITNESSES)
    rng = rng or np.random.default_rng()
    for _ in range(rounds):
        witness = int(rng.integers(2, min(n - 2, 2**63 - 1)))
        if not _miller_rabin(n, witness):
            return False
    return True


def generate_prime(bits: int, rng: np.random.Generator) -> int:
    """A random prime with exactly ``bits`` bits (top bit set, odd)."""
    if bits < 3:
        raise ValueError("need at least 3 bits for a prime candidate range")
    while True:
        words = (bits + 63) // 64
        raw = int.from_bytes(rng.integers(0, 2**63, words, dtype=np.uint64).tobytes(), "little")
        candidate = raw & ((1 << bits) - 1)
        candidate |= (1 << (bits - 1)) | 1  # force size and oddness
        if is_probable_prime(candidate, rng):
            return candidate


def modinv(a: int, modulus: int) -> int:
    """Modular inverse; raises ``ValueError`` when gcd(a, modulus) != 1."""
    return pow(a, -1, modulus)


def lcm(a: int, b: int) -> int:
    """Least common multiple (used for Paillier's λ)."""
    import math

    return a // math.gcd(a, b) * b


def crt_pair(residue_p: int, residue_q: int, p: int, q: int) -> int:
    """Chinese-remainder combination for two coprime moduli."""
    q_inv = modinv(q, p)
    diff = (residue_p - residue_q) % p
    return (residue_q + q * ((diff * q_inv) % p)) % (p * q)
