"""Delphi's garbled-circuit ReLU on additive shares, end to end.

The server garbles :func:`~repro.crypto.circuit.relu_share_circuit` per
activation element, sends tables plus its own input labels, and transfers
the client's input labels through the IKNP OT extension. The client
evaluates and decodes ``ReLU(x) + r`` — its fresh additive share — while
the server keeps ``-r``. All bytes (tables, labels, OT traffic) are charged
to the :class:`~repro.mpc.network.Channel`, so the micro-benchmarks can
compare this against Cheetah's OT-based ReLU with real counts.
"""

from __future__ import annotations

import numpy as np

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # Channel is used only in annotations; a runtime
    # import would create a cycle through repro.mpc's engine/backends.
    from ..mpc.network import Channel
from .circuit import relu_share_circuit
from .garble import evaluate_garbled, garble
from .otext import SECURITY_PARAM, IknpOtExtension
from .prg import LABEL_BYTES, PRG

__all__ = ["GarbledReluProtocol"]


class GarbledReluProtocol:
    """Batched garbled-circuit ReLU over the ``2^bits`` ring.

    Parameters
    ----------
    rng:
        Source for garbling labels and output masks (server-side secret).
    channel:
        Byte/round accounting (may be ``None`` for pure correctness tests).
    bits:
        Ring width. 64 matches :mod:`repro.mpc.fixedpoint`; tests may use
        narrower rings for speed.
    security:
        IKNP column count, see :data:`~repro.crypto.otext.SECURITY_PARAM`.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        channel: Channel | None = None,
        bits: int = 64,
        security: int = SECURITY_PARAM,
    ):
        if not 2 <= bits <= 64:
            raise ValueError("bits must be between 2 and 64")
        self.bits = bits
        self.channel = channel
        self.circuit = relu_share_circuit(bits)
        self._prg = PRG(int(rng.integers(0, 2**62)))
        self._mask_rng = rng
        self._ot = IknpOtExtension(rng, channel, sender=1, security=security)

    # ------------------------------------------------------------------
    def run(self, shares: tuple[np.ndarray, np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
        """ReLU a flat pair of additive share arrays; returns fresh shares.

        ``shares[0]`` belongs to the client (evaluator), ``shares[1]`` to
        the server (garbler). Values are interpreted in the two's-complement
        ``2^bits`` ring.
        """
        client, server = (np.asarray(s).reshape(-1) for s in shares)
        if client.shape != server.shape:
            raise ValueError("share shapes differ")
        count = client.size
        bits = self.bits
        mask = (1 << bits) - 1

        garbled = []
        masks = []
        table_bytes = 0
        garbler_label_bytes = 0
        # Per element: fresh garbling, garbler inputs = (a bits, r bits).
        for i in range(count):
            gc = garble(self.circuit, self._prg)
            garbled.append(gc)
            r = int(self._mask_rng.integers(0, 2**62)) & mask
            masks.append(r)
            table_bytes += gc.table_bytes
            garbler_label_bytes += 2 * bits * LABEL_BYTES
        if self.channel is not None:
            self.channel.send(1, table_bytes + garbler_label_bytes + count * (bits + 7) // 8,
                              label="gc-tables")
            self.channel.tick_round("gc-tables")

        # Client input labels through one batched OT (bits per element).
        messages0: list[bytes] = []
        messages1: list[bytes] = []
        choices = np.zeros(count * bits, dtype=np.uint8)
        for i, gc in enumerate(garbled):
            b_value = int(client[i]) & mask
            for j, wire in enumerate(self.circuit.evaluator_inputs):
                messages0.append(gc.input_label(wire, 0))
                messages1.append(gc.input_label(wire, 1))
                choices[i * bits + j] = (b_value >> j) & 1
        received = self._ot.transfer(messages0, messages1, choices)

        out_client = np.zeros(count, dtype=np.uint64)
        out_server = np.zeros(count, dtype=np.uint64)
        for i, gc in enumerate(garbled):
            a_value = int(server[i]) & mask
            r = masks[i]
            labels: dict[int, bytes] = {}
            garbler_wires = self.circuit.garbler_inputs
            for j in range(bits):  # share bits then mask bits
                labels[garbler_wires[j]] = gc.input_label(garbler_wires[j], (a_value >> j) & 1)
                labels[garbler_wires[bits + j]] = gc.input_label(
                    garbler_wires[bits + j], (r >> j) & 1
                )
            for j, wire in enumerate(self.circuit.evaluator_inputs):
                labels[wire] = received[i * bits + j]
            out_bits = evaluate_garbled(gc, labels)
            y_plus_r = sum(bit << j for j, bit in enumerate(out_bits))
            out_client[i] = np.uint64(y_plus_r)
            out_server[i] = np.uint64((-r) & mask)
        return out_client, out_server
