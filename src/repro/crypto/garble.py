"""Free-XOR + point-and-permute garbling.

The classic Yao construction with two standard optimisations:

* **free-XOR** (Kolesnikov-Schneider): all wire-label pairs differ by one
  global offset ``R``; XOR (and INV) gates need no table and no crypto;
* **point-and-permute**: the least-significant bit of each label is a
  *permute bit* (``lsb(R) = 1`` so the two labels of a wire always have
  opposite permute bits); AND-gate tables are sorted by the input permute
  bits, letting the evaluator decrypt exactly one row without trial
  decryption.

Costs are the textbook ones: 4 table rows of 16 bytes per AND gate, zero
for XOR/INV — these are exactly the bytes
:class:`~repro.crypto.gc_protocol.GarbledReluProtocol` charges to the
channel.
"""

from __future__ import annotations

from dataclasses import dataclass

from .circuit import Circuit
from .prg import LABEL_BYTES, PRG, hash_label, xor_bytes

__all__ = ["GarbledCircuit", "garble", "evaluate_garbled"]


def _lsb(label: bytes) -> int:
    return label[0] & 1


@dataclass
class GarbledCircuit:
    """A garbled circuit plus the garbler's secrets.

    ``tables`` holds the 4-row AND tables in gate order; ``zero_labels``
    maps each input wire to its label for value 0 (the garbler keeps this
    private, sending only the labels matching actual input values);
    ``decode_bits`` are the output-wire permute bits the evaluator needs to
    decode its result.
    """

    circuit: Circuit
    delta: bytes
    zero_labels: dict[int, bytes]
    tables: list[tuple[bytes, bytes, bytes, bytes]]
    decode_bits: list[int]

    @property
    def table_bytes(self) -> int:
        """Communication size of the garbled tables."""
        return 4 * LABEL_BYTES * len(self.tables)

    def input_label(self, wire: int, value: int) -> bytes:
        """The label encoding ``value`` on an input wire (garbler-side)."""
        label = self.zero_labels[wire]
        return xor_bytes(label, self.delta) if value else label


def garble(circuit: Circuit, prg: PRG) -> GarbledCircuit:
    """Garble a circuit, returning tables and the garbler's label secrets."""
    delta = bytes([prg.label()[0] | 1]) + prg.label()[1:]  # lsb(R) = 1
    labels: dict[int, bytes] = {}
    for wire in (*circuit.garbler_inputs, *circuit.evaluator_inputs):
        labels[wire] = prg.label()

    tables: list[tuple[bytes, bytes, bytes, bytes]] = []
    for gate_id, gate in enumerate(circuit.gates):
        if gate.op == "XOR":
            labels[gate.out] = xor_bytes(labels[gate.a], labels[gate.b])
        elif gate.op == "INV":
            labels[gate.out] = xor_bytes(labels[gate.a], delta)
        elif gate.op == "AND":
            out0 = prg.label()
            labels[gate.out] = out0
            rows: list[bytes | None] = [None] * 4
            for va in (0, 1):
                for vb in (0, 1):
                    la = xor_bytes(labels[gate.a], delta) if va else labels[gate.a]
                    lb = xor_bytes(labels[gate.b], delta) if vb else labels[gate.b]
                    out = xor_bytes(out0, delta) if va & vb else out0
                    row_index = (_lsb(la) << 1) | _lsb(lb)
                    pad = hash_label(la, lb, tweak=gate_id)
                    rows[row_index] = xor_bytes(pad, out)
            tables.append(tuple(rows))  # type: ignore[arg-type]
        else:  # pragma: no cover - gate ops fixed at construction
            raise ValueError(f"unknown gate op {gate.op!r}")

    decode_bits = [_lsb(labels[w]) for w in circuit.outputs]
    input_wires = (*circuit.garbler_inputs, *circuit.evaluator_inputs)
    return GarbledCircuit(
        circuit=circuit,
        delta=delta,
        zero_labels={w: labels[w] for w in input_wires},
        tables=tables,
        decode_bits=decode_bits,
    )


def evaluate_garbled(garbled: GarbledCircuit, input_labels: dict[int, bytes]) -> list[int]:
    """Evaluate with one label per input wire; returns decoded output bits.

    This is the evaluator's computation: it sees only single labels and the
    tables, never the label pairs or ``delta``.
    """
    circuit = garbled.circuit
    labels = dict(input_labels)
    table_iter = iter(garbled.tables)
    for gate_id, gate in enumerate(circuit.gates):
        if gate.op == "XOR":
            labels[gate.out] = xor_bytes(labels[gate.a], labels[gate.b])
        elif gate.op == "INV":
            labels[gate.out] = labels[gate.a]  # semantics live in decode/garble side
        elif gate.op == "AND":
            table = next(table_iter)
            la, lb = labels[gate.a], labels[gate.b]
            row = table[(_lsb(la) << 1) | _lsb(lb)]
            labels[gate.out] = xor_bytes(row, hash_label(la, lb, tweak=gate_id))
    return [
        _lsb(labels[w]) ^ p for w, p in zip(circuit.outputs, garbled.decode_bits)
    ]
