"""IKNP oblivious-transfer extension.

Turns :data:`SECURITY_PARAM` base OTs into millions of fast OTs using only
PRG expansion and hashing (Ishai-Kilian-Nissim-Petrank, CRYPTO'03). This is
the OT workhorse behind Cheetah's non-linear protocols and behind the
evaluator-input labels of Delphi's garbled circuits.

Protocol sketch (semi-honest), for ``m`` extended OTs on choice bits ``r``:

1. The parties run ``k`` base OTs in the *reverse* direction: the extension
   receiver acts as base-OT sender with random seed pairs ``(s_i^0, s_i^1)``;
   the extension sender uses its secret ``Δ ∈ {0,1}^k`` as the base choice
   bits, learning ``s_i^{Δ_i}``.
2. The receiver expands both seeds per column: ``t_i = PRG(s_i^0)`` and
   sends ``u_i = PRG(s_i^0) ⊕ PRG(s_i^1) ⊕ r``.
3. The sender computes ``q_i = PRG(s_i^{Δ_i}) ⊕ Δ_i·u_i``; row-wise this
   gives ``q_j = t_j ⊕ r_j·Δ``.
4. Pads: sender uses ``H(j, q_j)`` and ``H(j, q_j ⊕ Δ)``; the receiver
   knows exactly ``H(j, t_j)`` — the pad of its chosen message.

Three flavours are exposed:

* :meth:`IknpOtExtension.transfer` — chosen-message 1-of-2 OT;
* :meth:`IknpOtExtension.random` — random OT (sender gets two random
  messages, receiver the chosen one) — no payload transfer at all;
* :meth:`IknpOtExtension.correlated` — correlated OT for a caller-supplied
  correlation function (the B2A and multiplexer protocols use this).
"""

from __future__ import annotations

import numpy as np

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # Channel is used only in annotations; a runtime
    # import would create a cycle through repro.mpc's engine/backends.
    from ..mpc.network import Channel
from .baseot import TOY_GROUP, DhGroup, base_ot_batch
from .prg import LABEL_BYTES, PRG, hash_label, xor_bytes

__all__ = ["SECURITY_PARAM", "IknpOtExtension"]

#: Computational security parameter (number of base OTs / matrix columns).
SECURITY_PARAM = 128


def _pack_columns(columns: list[np.ndarray]) -> np.ndarray:
    """Stack k bit-columns of length m into an (m, k) uint8 matrix."""
    return np.stack(columns, axis=1)


class IknpOtExtension:
    """A reusable IKNP session between the two in-process parties.

    Parameters
    ----------
    rng:
        Randomness source for base OTs and the sender secret.
    channel:
        Traffic accounting; base-OT and extension bytes are charged here.
    sender:
        Which party (0 = client, 1 = server) plays the OT *sender* in this
        session. Affects only the accounting direction.
    security:
        Column count; lowering it below :data:`SECURITY_PARAM` is only
        acceptable inside unit tests.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        channel: Channel | None = None,
        sender: int = 1,
        security: int = SECURITY_PARAM,
        group: DhGroup = TOY_GROUP,
    ):
        self.channel = channel
        self.sender = sender
        self.security = security
        self._rng = rng
        # Step 1 — reversed base OTs. The extension sender's secret Δ:
        self._delta = rng.integers(0, 2, size=security, dtype=np.uint8)
        seeds0 = [PRG(int(rng.integers(0, 2**62)) << 1).label() for _ in range(security)]
        seeds1 = [PRG((int(rng.integers(0, 2**62)) << 1) | 1).label() for _ in range(security)]
        chosen = base_ot_batch(seeds0, seeds1, self._delta, rng, channel, group)
        self._receiver_seeds = list(zip(seeds0, seeds1))
        self._sender_seeds = chosen
        self._uses = 0  # stream offset so one session serves many calls

    # ------------------------------------------------------------------
    def _extend(self, choices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Core extension: returns (q_matrix, t_matrix) rows for this batch."""
        m = len(choices)
        offset = self._uses
        self._uses += 1
        t_cols: list[np.ndarray] = []
        q_cols: list[np.ndarray] = []
        u_bytes = 0
        for i in range(self.security):
            s0, s1 = self._receiver_seeds[i]
            t_i = PRG(hash_label(s0, tweak=offset)).bits(m)
            v_i = PRG(hash_label(s1, tweak=offset)).bits(m)
            u_i = t_i ^ v_i ^ choices
            u_bytes += (m + 7) // 8
            # Sender side: expand its chosen seed and unmask with Δ_i · u_i.
            expanded = PRG(hash_label(self._sender_seeds[i], tweak=offset)).bits(m)
            q_i = expanded ^ (self._delta[i] * u_i)
            t_cols.append(t_i)
            q_cols.append(q_i)
        if self.channel is not None:
            self.channel.send(1 - self.sender, u_bytes, label="iknp-u")
            self.channel.tick_round("iknp-u")
        return _pack_columns(q_cols), _pack_columns(t_cols)

    def _pads(self, choices: np.ndarray) -> tuple[list[bytes], list[bytes], list[bytes]]:
        """Derive (pad0, pad1, chosen_pad) per extended OT."""
        q_rows, t_rows = self._extend(choices)
        delta_packed = np.packbits(self._delta, bitorder="little").tobytes()
        pads0: list[bytes] = []
        pads1: list[bytes] = []
        chosen: list[bytes] = []
        for j in range(len(choices)):
            q_packed = np.packbits(q_rows[j], bitorder="little").tobytes()
            q_delta = xor_bytes(q_packed, delta_packed)
            pads0.append(hash_label(q_packed, tweak=j))
            pads1.append(hash_label(q_delta, tweak=j))
            t_packed = np.packbits(t_rows[j], bitorder="little").tobytes()
            chosen.append(hash_label(t_packed, tweak=j))
        return pads0, pads1, chosen

    # ------------------------------------------------------------------
    def transfer(
        self, messages0: list[bytes], messages1: list[bytes], choices: np.ndarray
    ) -> list[bytes]:
        """Chosen-message OT: receiver gets ``messages[choices[j]][j]``."""
        choices = np.asarray(choices, dtype=np.uint8)
        if len(messages0) != len(messages1) or len(messages0) != len(choices):
            raise ValueError("message lists and choices must have equal length")
        pads0, pads1, chosen_pads = self._pads(choices)
        received: list[bytes] = []
        payload = 0
        for j, choice in enumerate(choices):
            width = max(len(messages0[j]), len(messages1[j]), LABEL_BYTES)
            pad0 = hash_label(pads0[j], tweak=j, out_bytes=width)
            pad1 = hash_label(pads1[j], tweak=j, out_bytes=width)
            c0 = xor_bytes(messages0[j].ljust(width, b"\0"), pad0)
            c1 = xor_bytes(messages1[j].ljust(width, b"\0"), pad1)
            payload += 2 * width
            pad_c = hash_label(chosen_pads[j], tweak=j, out_bytes=width)
            cipher = c1 if choice else c0
            received.append(xor_bytes(cipher, pad_c)[: len(messages1[j] if choice else messages0[j])])
        if self.channel is not None:
            self.channel.send(self.sender, payload, label="iknp-payload")
            self.channel.tick_round("iknp-payload")
        return received

    def random(self, count: int, choices: np.ndarray) -> tuple[list[bytes], list[bytes], list[bytes]]:
        """Random OT: no payload moves; pads *are* the messages.

        Returns ``(r0, r1, r_chosen)`` where the sender holds the first two
        lists and the receiver the third, with ``r_chosen[j] ==
        (r1 if choices[j] else r0)[j]``.
        """
        choices = np.asarray(choices, dtype=np.uint8)
        if len(choices) != count:
            raise ValueError("choices length must equal count")
        return self._pads(choices)

    def correlated(
        self, correlation, count: int, choices: np.ndarray
    ) -> tuple[list[bytes], list[bytes]]:
        """Correlated OT: sender's messages are (x_j, correlation(x_j)).

        ``correlation`` maps 16-byte pads to 16-byte messages. The sender
        learns the ``x_j`` (random); the receiver learns its chosen one.
        Only one ciphertext per transfer crosses the wire (the correction).
        """
        choices = np.asarray(choices, dtype=np.uint8)
        pads0, pads1, chosen_pads = self._pads(choices)
        corrections = 0
        received: list[bytes] = []
        for j, choice in enumerate(choices):
            x_j = pads0[j]
            corrected = correlation(x_j)
            cipher = xor_bytes(corrected, pads1[j])
            corrections += len(cipher)
            if choice:
                received.append(xor_bytes(cipher, chosen_pads[j]))
            else:
                received.append(chosen_pads[j])
        if self.channel is not None:
            self.channel.send(self.sender, corrections, label="iknp-cot")
            self.channel.tick_round("iknp-cot")
        return [pads0[j] for j in range(count)], received
