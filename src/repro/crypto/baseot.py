"""Chou-Orlandi "simplest OT" base oblivious transfers.

The IKNP extension (:mod:`repro.crypto.otext`) needs a small, fixed number
of *base* OTs — typically 128 — whose cost amortises away. This module
implements the Chou-Orlandi protocol in the semi-honest model over the
multiplicative group of a safe prime:

* sender: ``a ← Z_q``, publishes ``A = g^a``;
* receiver with choice bit ``c``: ``b ← Z_q``, publishes
  ``B = g^b`` (c = 0) or ``B = A · g^b`` (c = 1);
* sender derives pads ``k0 = H(B^a)`` and ``k1 = H((B/A)^a)``; the
  receiver derives ``k_c = H(A^b)`` — exactly one of the two.

The group is the 1536-bit MODP group of RFC 3526 by default, with ``g = 4``
(a quadratic residue, hence a generator of the prime-order subgroup); a
small toy group is available to keep unit tests fast.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # Channel is used only in annotations; a runtime
    # import would create a cycle through repro.mpc's engine/backends.
    from ..mpc.network import Channel
from .prg import LABEL_BYTES, hash_label, xor_bytes

__all__ = ["DhGroup", "RFC3526_1536", "TOY_GROUP", "BaseOTSender", "BaseOTReceiver",
           "base_ot_batch"]


@dataclass(frozen=True)
class DhGroup:
    """A prime-order subgroup of Z_p^* described by (p, q, g)."""

    p: int  # safe prime
    q: int  # subgroup order, (p - 1) // 2
    g: int  # generator of the order-q subgroup

    @property
    def element_bytes(self) -> int:
        return (self.p.bit_length() + 7) // 8

    def encode(self, element: int) -> bytes:
        return element.to_bytes(self.element_bytes, "little")


# RFC 3526 group 5 (1536-bit MODP). p is a safe prime; 4 = 2^2 generates
# the quadratic-residue subgroup of order (p-1)/2.
_P_1536 = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA237327FFFFFFFFFFFFFFFF",
    16,
)
RFC3526_1536 = DhGroup(p=_P_1536, q=(_P_1536 - 1) // 2, g=4)

# A deliberately small safe-prime group for fast tests (NOT secure).
_P_TOY = 0x8A63E30A29A3061433A7C803110F2F4F  # 128-bit safe prime
TOY_GROUP = DhGroup(p=_P_TOY, q=(_P_TOY - 1) // 2, g=4)


class BaseOTSender:
    """Sender side of a batch of Chou-Orlandi OTs (holds message pairs)."""

    def __init__(self, group: DhGroup, rng: np.random.Generator):
        self.group = group
        self._a = int(rng.integers(2, 2**62)) % group.q or 2
        self.big_a = pow(group.g, self._a, group.p)

    def pads(self, big_b: int, index: int) -> tuple[bytes, bytes]:
        """Derive the two one-time pads from the receiver's element."""
        group = self.group
        shared0 = pow(big_b, self._a, group.p)
        big_a_inv = pow(self.big_a, -1, group.p)
        shared1 = pow(big_b * big_a_inv % group.p, self._a, group.p)
        pad0 = hash_label(group.encode(shared0), tweak=index)
        pad1 = hash_label(group.encode(shared1), tweak=index)
        return pad0, pad1


class BaseOTReceiver:
    """Receiver side: one group element per choice bit."""

    def __init__(self, group: DhGroup, rng: np.random.Generator):
        self.group = group
        self._rng = rng

    def respond(self, big_a: int, choice: int) -> tuple[int, int]:
        """Return (B, b) for one transfer with the given choice bit."""
        group = self.group
        b = int(self._rng.integers(2, 2**62)) % group.q or 3
        big_b = pow(group.g, b, group.p)
        if choice:
            big_b = big_b * big_a % group.p
        return big_b, b

    def pad(self, big_a: int, b: int, index: int) -> bytes:
        """The pad for the chosen message."""
        shared = pow(big_a, b, self.group.p)
        return hash_label(self.group.encode(shared), tweak=index)


def base_ot_batch(
    messages0: list[bytes],
    messages1: list[bytes],
    choices: np.ndarray,
    rng: np.random.Generator,
    channel: Channel | None = None,
    group: DhGroup = TOY_GROUP,
) -> list[bytes]:
    """Run ``len(choices)`` base OTs, returning the chosen messages.

    Both parties run in-process; all protocol messages are charged to
    ``channel``. Message lengths must equal :data:`~repro.crypto.prg.LABEL_BYTES`
    — base OTs only ever carry PRG seeds here.
    """
    count = len(choices)
    if len(messages0) != count or len(messages1) != count:
        raise ValueError("message lists and choices must have equal length")
    for m in (*messages0, *messages1):
        if len(m) != LABEL_BYTES:
            raise ValueError(f"base OT messages must be {LABEL_BYTES} bytes")

    sender = BaseOTSender(group, rng)
    receiver = BaseOTReceiver(group, rng)
    if channel is not None:
        channel.send(1, group.element_bytes, label="baseot-A")  # A broadcast once
        channel.tick_round("baseot-A")

    received: list[bytes] = []
    response_bytes = 0
    payload_bytes = 0
    for i in range(count):
        big_b, secret_b = receiver.respond(sender.big_a, int(choices[i]))
        response_bytes += group.element_bytes
        pad0, pad1 = sender.pads(big_b, i)
        cipher0 = xor_bytes(messages0[i], pad0)
        cipher1 = xor_bytes(messages1[i], pad1)
        payload_bytes += len(cipher0) + len(cipher1)
        chosen_pad = receiver.pad(sender.big_a, secret_b, i)
        chosen_cipher = cipher1 if choices[i] else cipher0
        received.append(xor_bytes(chosen_cipher, chosen_pad))

    if channel is not None:
        channel.send(0, response_bytes, label="baseot-B")
        channel.tick_round("baseot-B")
        channel.send(1, payload_bytes, label="baseot-ciphertexts")
        channel.tick_round("baseot-ciphertexts")
    return received
