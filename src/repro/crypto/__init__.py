"""``repro.crypto`` — concrete cryptographic primitives for the PI backends.

The dealer model in :mod:`repro.mpc` abstracts the *preprocessing* of the
PI frameworks the paper builds on. This package provides the concrete
instantiations, so small-scale inferences can run with the real primitive
stack end to end:

* :mod:`~repro.crypto.prg` — hash-based pseudorandom generator and the
  tweakable hash used as the garbling KDF;
* :mod:`~repro.crypto.numbertheory` — Miller-Rabin, prime generation,
  modular arithmetic helpers;
* :mod:`~repro.crypto.baseot` — Chou-Orlandi base oblivious transfer over
  a multiplicative group;
* :mod:`~repro.crypto.otext` — IKNP oblivious-transfer extension (chosen,
  random and correlated variants);
* :mod:`~repro.crypto.circuit` / :mod:`~repro.crypto.garble` — boolean
  circuits and a free-XOR + point-and-permute garbling scheme (Delphi's
  ReLU protocol);
* :mod:`~repro.crypto.gc_protocol` — the two-party garbled-circuit ReLU on
  additive shares;
* :mod:`~repro.crypto.paillier` — Paillier additively homomorphic
  encryption (Delphi's linear-layer preprocessing);
* :mod:`~repro.crypto.rlwe` — a BFV-style RLWE scheme with Cheetah's
  coefficient packing for linear layers;
* :mod:`~repro.crypto.millionaire` — OT-based comparison, DReLU, B2A and
  multiplexing (Cheetah/CrypTFlow2's non-linear protocol family).

Everything is implemented from scratch on numpy + ``hashlib``; no external
cryptography dependency. The schemes target the semi-honest model of the
paper and favour clarity over constant-time behaviour.
"""

from .baseot import BaseOTReceiver, BaseOTSender, base_ot_batch
from .circuit import Circuit, evaluate_plain, relu_share_circuit
from .garble import GarbledCircuit, evaluate_garbled, garble
from .gc_protocol import GarbledReluProtocol
from .millionaire import (
    b2a_via_ot,
    millionaire_compare,
    ot_bit_triples,
    secure_drelu_ot,
    secure_mux_via_ot,
    secure_relu_ot,
)
from .numbertheory import generate_prime, is_probable_prime, modinv
from .otext import IknpOtExtension
from .paillier import PaillierCiphertext, PaillierKeyPair, paillier_keygen
from .prg import PRG, hash_label
from .rlwe import RlweCiphertext, RlweContext, RlweKeyPair, pack_matvec_plain, rlwe_keygen

__all__ = [
    "PRG",
    "hash_label",
    "is_probable_prime",
    "generate_prime",
    "modinv",
    "BaseOTSender",
    "BaseOTReceiver",
    "base_ot_batch",
    "IknpOtExtension",
    "Circuit",
    "relu_share_circuit",
    "evaluate_plain",
    "garble",
    "evaluate_garbled",
    "GarbledCircuit",
    "GarbledReluProtocol",
    "paillier_keygen",
    "PaillierKeyPair",
    "PaillierCiphertext",
    "RlweContext",
    "RlweKeyPair",
    "RlweCiphertext",
    "rlwe_keygen",
    "pack_matvec_plain",
    "millionaire_compare",
    "ot_bit_triples",
    "b2a_via_ot",
    "secure_drelu_ot",
    "secure_mux_via_ot",
    "secure_relu_ot",
]
