"""``repro.data`` — deterministic synthetic datasets (CIFAR stand-ins)."""

from .synthetic import (
    SyntheticImageDataset,
    iterate_minibatches,
    make_cifar10,
    make_cifar100,
)

__all__ = [
    "SyntheticImageDataset",
    "iterate_minibatches",
    "make_cifar10",
    "make_cifar100",
]
