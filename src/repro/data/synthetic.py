"""Deterministic synthetic CIFAR-10/100 stand-ins.

The offline environment has no access to the real CIFAR datasets, so this
module procedurally generates labelled 3x32x32 images with the properties
the C2PI experiments require:

* **learnable class structure** — every class has a distinctive shape,
  colour palette and texture, so the victim networks reach accuracies far
  above chance;
* **perceptual structure** — images contain luminance, contrast and spatial
  structure, so the SSIM between an input and an attack reconstruction is a
  meaningful notion of "recognisable";
* **instance diversity** — position, scale, rotation-like phase,
  background gradients and pixel noise vary per image, so inversion attacks
  must learn genuine inverses rather than memorise a constant.

Classes are built from ten base shapes crossed with palette families; the
100-class variant combines shape and palette indices. All randomness is
drawn from a single seeded generator, so datasets are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SyntheticImageDataset", "make_cifar10", "make_cifar100", "iterate_minibatches"]

_NUM_SHAPES = 10


@dataclass
class SyntheticImageDataset:
    """A labelled image dataset with train/test splits.

    Attributes
    ----------
    train_images, test_images:
        float32 arrays of shape (N, 3, S, S) with values in [0, 1].
    train_labels, test_labels:
        int64 class ids.
    num_classes:
        Number of distinct labels.
    name:
        ``"cifar10-syn"`` or ``"cifar100-syn"``.
    """

    train_images: np.ndarray
    train_labels: np.ndarray
    test_images: np.ndarray
    test_labels: np.ndarray
    num_classes: int
    name: str

    @property
    def image_shape(self) -> tuple[int, int, int]:
        return tuple(self.train_images.shape[1:])

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"SyntheticImageDataset({self.name}, train={len(self.train_labels)}, "
            f"test={len(self.test_labels)}, classes={self.num_classes})"
        )


def _shape_mask(shape_id: int, size: int, cx: float, cy: float, radius: float,
                phase: float) -> np.ndarray:
    """Binary-ish (anti-aliased) mask of one of ten base shapes."""
    ys, xs = np.mgrid[0:size, 0:size].astype(np.float32)
    xs = (xs - cx) / radius
    ys = (ys - cy) / radius
    rr = np.sqrt(xs * xs + ys * ys)
    smooth = 4.0  # anti-alias softness in normalised units

    def soft(d):
        return np.clip(0.5 - d * smooth, 0.0, 1.0)

    if shape_id == 0:  # disk
        return soft(rr - 1.0)
    if shape_id == 1:  # ring
        return soft(np.abs(rr - 0.8) - 0.25)
    if shape_id == 2:  # square
        return soft(np.maximum(np.abs(xs), np.abs(ys)) - 0.9)
    if shape_id == 3:  # diamond
        return soft(np.abs(xs) + np.abs(ys) - 1.1)
    if shape_id == 4:  # cross
        bar_w = 0.35
        horizontal = soft(np.maximum(np.abs(ys) - bar_w, np.abs(xs) - 1.1))
        vertical = soft(np.maximum(np.abs(xs) - bar_w, np.abs(ys) - 1.1))
        return np.maximum(horizontal, vertical)
    if shape_id == 5:  # horizontal stripes
        return 0.5 + 0.5 * np.sin(ys * 4.0 + phase) * soft(rr - 1.2)
    if shape_id == 6:  # vertical stripes
        return 0.5 + 0.5 * np.sin(xs * 4.0 + phase) * soft(rr - 1.2)
    if shape_id == 7:  # checkerboard
        return (0.5 + 0.5 * np.sign(np.sin(xs * 3.5 + phase) * np.sin(ys * 3.5 + phase))) * soft(
            rr - 1.2
        )
    if shape_id == 8:  # triangle (upward)
        inside = np.maximum(np.abs(xs) * 1.3 + ys * 0.8 - 0.7, -ys - 0.9)
        return soft(inside)
    if shape_id == 9:  # two blobs
        blob1 = soft(np.sqrt((xs - 0.55) ** 2 + (ys - 0.35) ** 2) - 0.55)
        blob2 = soft(np.sqrt((xs + 0.55) ** 2 + (ys + 0.35) ** 2) - 0.55)
        return np.maximum(blob1, blob2)
    raise ValueError(f"unknown shape id {shape_id}")


def _palette(palette_id: int, num_palettes: int, rng: np.random.Generator
             ) -> tuple[np.ndarray, np.ndarray]:
    """Foreground/background RGB pairs, well separated in hue."""
    hue = palette_id / max(num_palettes, 1)
    base = np.array(
        [
            0.5 + 0.5 * np.cos(2 * np.pi * (hue + 0.00)),
            0.5 + 0.5 * np.cos(2 * np.pi * (hue + 0.33)),
            0.5 + 0.5 * np.cos(2 * np.pi * (hue + 0.67)),
        ],
        dtype=np.float32,
    )
    foreground = 0.25 + 0.7 * base
    background = 0.9 - 0.7 * base
    return foreground, background


def _render_image(
    size: int,
    shape_id: int,
    palette_id: int,
    num_palettes: int,
    rng: np.random.Generator,
    noise_std: float,
) -> np.ndarray:
    foreground, background = _palette(palette_id, num_palettes, rng)
    cx = size / 2 + rng.uniform(-size / 8, size / 8)
    cy = size / 2 + rng.uniform(-size / 8, size / 8)
    radius = size * rng.uniform(0.28, 0.4)
    phase = rng.uniform(0, 2 * np.pi)
    mask = _shape_mask(shape_id, size, cx, cy, radius, phase)

    # Background: gentle linear gradient in a random direction.
    ys, xs = np.mgrid[0:size, 0:size].astype(np.float32) / size
    direction = rng.uniform(0, 2 * np.pi)
    gradient = 0.3 * (np.cos(direction) * xs + np.sin(direction) * ys)
    bg = background[:, None, None] * (0.85 + gradient[None])

    # Per-instance colour jitter keeps classes learnable but not trivial.
    fg = foreground * (1.0 + rng.uniform(-0.12, 0.12, size=3).astype(np.float32))
    image = bg * (1.0 - mask[None]) + fg[:, None, None] * mask[None]
    image += rng.normal(0.0, noise_std, size=image.shape).astype(np.float32)
    return np.clip(image, 0.0, 1.0).astype(np.float32)


def _class_factors(label: int, num_classes: int) -> tuple[int, int, int]:
    """Map a label to (shape_id, palette_id, num_palettes)."""
    if num_classes <= _NUM_SHAPES:
        return label % _NUM_SHAPES, label, num_classes
    palettes = (num_classes + _NUM_SHAPES - 1) // _NUM_SHAPES
    return label % _NUM_SHAPES, label // _NUM_SHAPES, palettes


def _generate_split(
    num_images: int,
    num_classes: int,
    size: int,
    rng: np.random.Generator,
    noise_std: float,
) -> tuple[np.ndarray, np.ndarray]:
    labels = rng.integers(0, num_classes, size=num_images).astype(np.int64)
    images = np.empty((num_images, 3, size, size), dtype=np.float32)
    for i, label in enumerate(labels):
        shape_id, palette_id, palettes = _class_factors(int(label), num_classes)
        images[i] = _render_image(size, shape_id, palette_id, palettes, rng, noise_std)
    return images, labels


def _make_dataset(
    name: str,
    num_classes: int,
    train_size: int,
    test_size: int,
    seed: int,
    image_size: int,
    noise_std: float,
) -> SyntheticImageDataset:
    rng = np.random.default_rng(seed)
    train_images, train_labels = _generate_split(train_size, num_classes, image_size, rng, noise_std)
    test_images, test_labels = _generate_split(test_size, num_classes, image_size, rng, noise_std)
    return SyntheticImageDataset(
        train_images=train_images,
        train_labels=train_labels,
        test_images=test_images,
        test_labels=test_labels,
        num_classes=num_classes,
        name=name,
    )


def make_cifar10(
    train_size: int = 2000,
    test_size: int = 500,
    seed: int = 0,
    image_size: int = 32,
    noise_std: float = 0.04,
) -> SyntheticImageDataset:
    """Synthetic 10-class stand-in for CIFAR-10."""
    return _make_dataset("cifar10-syn", 10, train_size, test_size, seed, image_size, noise_std)


def make_cifar100(
    train_size: int = 2000,
    test_size: int = 500,
    seed: int = 1,
    image_size: int = 32,
    noise_std: float = 0.04,
) -> SyntheticImageDataset:
    """Synthetic 100-class stand-in for CIFAR-100 (shape x palette grid)."""
    return _make_dataset("cifar100-syn", 100, train_size, test_size, seed, image_size, noise_std)


def iterate_minibatches(
    images: np.ndarray,
    labels: np.ndarray,
    batch_size: int,
    rng: np.random.Generator | None = None,
    shuffle: bool = True,
):
    """Yield (image_batch, label_batch) pairs covering the dataset once."""
    count = len(labels)
    order = np.arange(count)
    if shuffle:
        (rng or np.random.default_rng()).shuffle(order)
    for start in range(0, count, batch_size):
        index = order[start : start + batch_size]
        yield images[index], labels[index]
