"""Experiment runners shared by the ``benchmarks/`` suite.

Each function regenerates the measurement behind one of the paper's tables
or figures at the active scale profile and returns plain data structures;
the benchmark files render them next to the paper's reported numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..attacks import DINA, EINA, INA, MLA, SweepResult, attack_layer_sweep
from ..core import BoundarySearchConfig, noised_accuracy
from ..data import SyntheticImageDataset
from ..models.layered import LayeredModel
from ..mpc import (
    LAN,
    WAN,
    CostEstimate,
    cheetah_costs,
    delphi_costs,
    static_layer_tallies,
)
from ..core.c2pi import full_pi_tallies
from .scale import ScaleProfile

__all__ = [
    "make_attack_factory",
    "run_idpa_comparison",
    "run_noise_defense",
    "run_noise_accuracy",
    "BoundaryAnalysis",
    "run_boundary_analysis",
    "CostRow",
    "run_cost_comparison",
    "render_table",
]


def make_attack_factory(
    kind: str,
    scale: ScaleProfile,
    noise_magnitude: float = 0.0,
    coefficient_schedule: str = "increasing",
    seed: int = 0,
):
    """AttackFactory for one attack family at the active scale budgets."""
    kind = kind.lower()

    def factory(model: LayeredModel, layer_id: float):
        if kind == "mla":
            return MLA(model, layer_id, iterations=scale.mla_iterations, seed=seed)
        classes = {"ina": INA, "eina": EINA, "dina": DINA}
        if kind not in classes:
            raise ValueError(f"unknown attack kind {kind!r}")
        return classes[kind](
            model,
            layer_id,
            epochs=scale.attack_epochs,
            batch_size=scale.attack_batch,
            lr=scale.attack_lr,
            seed=seed,
            noise_magnitude=noise_magnitude,
            coefficient_schedule=coefficient_schedule,
        )

    return factory


def run_idpa_comparison(
    model: LayeredModel,
    dataset: SyntheticImageDataset,
    scale: ScaleProfile,
    attacks: tuple[str, ...] = ("mla", "eina", "dina"),
    noise_magnitude: float = 0.0,
    layer_ids: list[float] | None = None,
    coefficient_schedules: dict[str, str] | None = None,
) -> dict[str, SweepResult]:
    """Figure 4 (and 5): per-layer average SSIM for several attack families."""
    layer_ids = layer_ids or scale.conv_grid(model.conv_ids)
    schedules = coefficient_schedules or {}
    results = {}
    for kind in attacks:
        factory = make_attack_factory(
            kind,
            scale,
            noise_magnitude=noise_magnitude,
            coefficient_schedule=schedules.get(kind, "increasing"),
        )
        results[kind] = attack_layer_sweep(
            model,
            factory,
            attacker_images=dataset.train_images[: scale.attacker_images],
            eval_images=dataset.test_images[: scale.eval_images],
            layer_ids=layer_ids,
            noise_magnitude=noise_magnitude,
            attack_name=kind,
        )
    return results


def run_noise_defense(
    model: LayeredModel,
    dataset: SyntheticImageDataset,
    scale: ScaleProfile,
    magnitudes: tuple[float, ...] = (0.0, 0.1, 0.3, 0.5),
    layer_ids: list[float] | None = None,
) -> dict[float, SweepResult]:
    """Figure 6: DINA's SSIM per layer under increasing client noise.

    The inversion network is trained once per layer without noise and then
    evaluated under each magnitude; this isolates the defence's effect on a
    fixed attacker (training with matched noise augmentation is available
    via ``DINA(noise_magnitude=...)`` and costs one retraining per point).
    """
    layer_ids = layer_ids or scale.conv_grid(model.conv_ids)
    attacks = []
    for layer_id in layer_ids:
        attack = DINA(
            model,
            layer_id,
            epochs=scale.attack_epochs,
            batch_size=scale.attack_batch,
            seed=0,
        )
        attack.prepare(dataset.train_images[: scale.attacker_images])
        attacks.append(attack)

    results: dict[float, SweepResult] = {}
    for magnitude in magnitudes:
        sweep = SweepResult(attack_name=f"dina(noise={magnitude})")
        rng = np.random.default_rng(7)
        for attack in attacks:
            outcome = attack.evaluate(
                dataset.test_images[: scale.eval_images],
                noise_magnitude=magnitude,
                rng=rng,
            )
            sweep.layer_ids.append(attack.layer_id)
            sweep.avg_ssim.append(outcome.avg_ssim)
            sweep.results.append(outcome)
        results[magnitude] = sweep
    return results


def run_noise_accuracy(
    model: LayeredModel,
    dataset: SyntheticImageDataset,
    magnitudes: tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5),
    layer_ids: list[float] | None = None,
) -> dict[float, list[float]]:
    """Figure 7: accuracy when noise of each magnitude enters each layer."""
    layer_ids = layer_ids or [float(c) for c in model.conv_ids]
    table: dict[float, list[float]] = {}
    for magnitude in magnitudes:
        table[magnitude] = [
            noised_accuracy(
                model,
                layer_id,
                magnitude,
                dataset.test_images,
                dataset.test_labels,
            )
            for layer_id in layer_ids
        ]
    return table


@dataclass
class BoundaryAnalysis:
    """Output of the shared Figure 8 / Table I computation."""

    layer_ids: list[float]
    dina_ssim: list[float]
    noised_accuracy: dict[float, float]
    baseline_accuracy: float
    boundaries: dict[float, float] = field(default_factory=dict)  # sigma -> layer
    boundary_accuracy: dict[float, float] = field(default_factory=dict)


def run_boundary_analysis(
    model: LayeredModel,
    dataset: SyntheticImageDataset,
    scale: ScaleProfile,
    baseline_accuracy: float,
    sigmas: tuple[float, ...] = (0.2, 0.3),
    noise_magnitude: float = 0.1,
    accuracy_drop: float = 0.025,
) -> BoundaryAnalysis:
    """Algorithm 1 for several sigma values, sharing one DINA sweep.

    Phase 1 of Algorithm 1 only depends on the DINA SSIM curve, so the
    sweep is computed once and both thresholds are applied to it; phase 2
    then checks noised accuracy per candidate exactly as in the paper.
    """
    layer_ids = scale.conv_grid(model.conv_ids)
    factory = make_attack_factory("dina", scale, noise_magnitude=noise_magnitude)
    sweep = attack_layer_sweep(
        model,
        factory,
        attacker_images=dataset.train_images[: scale.attacker_images],
        eval_images=dataset.test_images[: scale.eval_images],
        layer_ids=layer_ids,
        noise_magnitude=noise_magnitude,
        attack_name="dina",
    )

    accuracy_cache: dict[float, float] = {}

    def accuracy_at(layer: float) -> float:
        if layer not in accuracy_cache:
            accuracy_cache[layer] = noised_accuracy(
                model,
                layer,
                noise_magnitude,
                dataset.test_images,
                dataset.test_labels,
            )
        return accuracy_cache[layer]

    analysis = BoundaryAnalysis(
        layer_ids=sweep.layer_ids,
        dina_ssim=sweep.avg_ssim,
        noised_accuracy=accuracy_cache,
        baseline_accuracy=baseline_accuracy,
    )
    threshold = baseline_accuracy - accuracy_drop
    for sigma in sigmas:
        candidate = sweep.potential_boundary(sigma)
        if candidate is None:  # attack succeeds everywhere: keep full PI
            boundary = layer_ids[-1]
        else:
            boundary = candidate
        index = layer_ids.index(boundary)
        while accuracy_at(layer_ids[index]) < threshold and index < len(layer_ids) - 1:
            index += 1
        analysis.boundaries[sigma] = layer_ids[index]
        analysis.boundary_accuracy[sigma] = accuracy_at(layer_ids[index])
    return analysis


@dataclass
class CostRow:
    """One Table II row: a (network, backend, setting) cost triple."""

    network: str
    backend: str
    setting: str  # "full" | "sigma=0.2" | "sigma=0.3"
    boundary: float
    lan_s: float
    wan_s: float
    comm_mb: float


def run_cost_comparison(
    model: LayeredModel,
    boundaries: dict[str, float],
    backends=None,
) -> list[CostRow]:
    """Table II: full PI vs C2PI cost rows for Delphi and Cheetah.

    ``boundaries`` maps setting labels (e.g. ``"sigma=0.3"``) to boundary
    layer ids; a full-PI row is always included. The model should be built
    at paper width (the cost model is static, so this is cheap).
    ``backends`` defaults to Table II's pair (Delphi, Cheetah); pass e.g.
    ``(delphi_costs(), cryptflow2_costs(), cheetah_costs())`` for the
    three-framework comparison.
    """
    rows: list[CostRow] = []
    full = full_pi_tallies(model)
    boundary_elements = {
        label: int(np.prod(model.activation_shape(layer)))
        for label, layer in boundaries.items()
    }
    for backend in backends if backends is not None else (delphi_costs(), cheetah_costs()):
        estimate = CostEstimate.from_tallies(full, backend)
        rows.append(
            CostRow(
                network=model.name,
                backend=backend.name,
                setting="full",
                boundary=model.layer_ids[-1],
                lan_s=estimate.latency(LAN),
                wan_s=estimate.latency(WAN),
                comm_mb=estimate.total_mb,
            )
        )
        for label, layer in boundaries.items():
            crypto = static_layer_tallies(model, layer)
            estimate = CostEstimate.from_tallies(crypto, backend)
            estimate.online_bytes += boundary_elements[label] * 8  # noised reveal
            estimate.rounds += 1
            rows.append(
                CostRow(
                    network=model.name,
                    backend=backend.name,
                    setting=label,
                    boundary=layer,
                    lan_s=estimate.latency(LAN),
                    wan_s=estimate.latency(WAN),
                    comm_mb=estimate.total_mb,
                )
            )
    return rows


def render_table(headers: list[str], rows: list[list]) -> str:
    """Fixed-width text table (benchmark console output)."""
    cells = [[str(h) for h in headers]] + [
        [f"{v:.3f}" if isinstance(v, float) else str(v) for v in row] for row in rows
    ]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        lines.append("  ".join(cell.rjust(width) for cell, width in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)
