"""The paper's reported numbers, for side-by-side printing in benchmarks.

Every value below is transcribed from Zhang et al., DAC 2023
(arXiv:2304.13266): Figure 4's potential boundaries, Table I's boundaries
and accuracies, and Table II's latency/communication rows. Benchmarks print
these next to the measured values so EXPERIMENTS.md can record
paper-vs-measured for each experiment.
"""

from __future__ import annotations

__all__ = [
    "SSIM_FAILURE_THRESHOLD",
    "FIG1_MLA_FAILURE_LAYER",
    "FIG4_POTENTIAL_BOUNDARIES",
    "FIG4_DINA_GAINS_AT_LAYER7",
    "NOISE_MAGNITUDE",
    "ACCURACY_DROP_TOLERANCE",
    "TABLE1",
    "TABLE2",
    "TABLE2_BOUNDARIES",
    "FIG8_BOUNDARIES",
    "NETWORK_SETTINGS",
]

# The conventional IDPA failure threshold (Figure 1 caption).
SSIM_FAILURE_THRESHOLD = 0.3

# Figure 1: MLA's SSIM on VGG16/CIFAR-10 drops below 0.3 after layer 10.
FIG1_MLA_FAILURE_LAYER = 10

# Figure 4 discussion: potential boundary layer returned by phase 1 of
# Algorithm 1 for each attack on VGG16.
FIG4_POTENTIAL_BOUNDARIES = {
    "cifar10": {"mla": 7.5, "eina": 8.5, "dina": 9.0},
    "cifar100": {"mla": 7.5, "eina": 9.5, "dina": 10.0},
}

# Figure 4: DINA's average-SSIM gains at conv layer 7.
FIG4_DINA_GAINS_AT_LAYER7 = {
    "cifar10": {"over_mla": 0.229, "over_eina": 0.108},
    "cifar100": {"over_mla": 0.205, "over_eina": 0.145},
}

# Sections IV-C/IV-D: chosen defence strength and accuracy tolerance.
NOISE_MAGNITUDE = 0.1
ACCURACY_DROP_TOLERANCE = 0.025

# Table I: boundary layer and accuracy per (dataset, network, sigma).
# "baseline" is the full-PI accuracy; boundaries use the paper's layer ids.
TABLE1 = {
    ("cifar10", "alexnet"): {
        "baseline": 81.56,
        0.2: {"boundary": 5.0, "accuracy": 81.97},
        0.3: {"boundary": 4.0, "accuracy": 79.32},
    },
    ("cifar10", "vgg16"): {
        "baseline": 92.33,
        0.2: {"boundary": 13.5, "accuracy": 92.61},
        0.3: {"boundary": 9.0, "accuracy": 92.49},
    },
    ("cifar10", "vgg19"): {
        "baseline": 92.38,
        0.2: {"boundary": 11.0, "accuracy": 92.66},
        0.3: {"boundary": 9.0, "accuracy": 92.42},
    },
    ("cifar100", "alexnet"): {
        "baseline": 45.66,
        0.2: {"boundary": 5.0, "accuracy": 45.36},
        0.3: {"boundary": 5.0, "accuracy": 45.36},
    },
    ("cifar100", "vgg16"): {
        "baseline": 68.44,
        0.2: {"boundary": 13.5, "accuracy": 68.44},
        0.3: {"boundary": 10.0, "accuracy": 66.53},
    },
    ("cifar100", "vgg19"): {
        "baseline": 69.54,
        0.2: {"boundary": 11.0, "accuracy": 67.30},
        0.3: {"boundary": 9.0, "accuracy": 67.06},
    },
}

# Figure 8 captions: the boundary conv ids found with sigma = 0.3.
FIG8_BOUNDARIES = {
    ("cifar10", "alexnet"): 4,
    ("cifar10", "vgg16"): 9,
    ("cifar10", "vgg19"): 9,
    ("cifar100", "alexnet"): 5,
    ("cifar100", "vgg16"): 10,
    ("cifar100", "vgg19"): 9,
}

# Table II (CIFAR-10): latency in seconds, communication in MB.
TABLE2 = {
    ("vgg16", "delphi"): {
        "full": {"lan_s": 6166.47, "wan_s": 9966.48, "comm_mb": 5163.0},
        0.2: {"lan_s": 6109.47, "wan_s": 9869.12, "comm_mb": 5163.0},
        0.3: {"lan_s": 2351.50, "wan_s": 2568.45, "comm_mb": 5143.0},
    },
    ("vgg16", "cheetah"): {
        "full": {"lan_s": 13.72, "wan_s": 25.27, "comm_mb": 179.64},
        0.2: {"lan_s": 14.38, "wan_s": 25.08, "comm_mb": 163.80},
        0.3: {"lan_s": 9.38, "wan_s": 14.76, "comm_mb": 71.89},
    },
    ("vgg19", "delphi"): {
        "full": {"lan_s": 12780.36, "wan_s": 13265.52, "comm_mb": 5184.0},
        0.2: {"lan_s": 5510.23, "wan_s": 6068.12, "comm_mb": 5162.0},
        0.3: {"lan_s": 4409.95, "wan_s": 5373.34, "comm_mb": 5143.0},
    },
    ("vgg19", "cheetah"): {
        "full": {"lan_s": 16.81, "wan_s": 27.67, "comm_mb": 211.40},
        0.2: {"lan_s": 11.89, "wan_s": 18.23, "comm_mb": 89.55},
        0.3: {"lan_s": 11.51, "wan_s": 15.23, "comm_mb": 76.83},
    },
}

# Table I / Table II boundaries used for the CIFAR-10 cost rows.
TABLE2_BOUNDARIES = {
    ("vgg16", 0.2): 13.5,
    ("vgg16", 0.3): 9.0,
    ("vgg19", 0.2): 11.0,
    ("vgg19", 0.3): 9.0,
}

# Section IV-E network settings (bandwidth MB/s, RTT ms).
NETWORK_SETTINGS = {"lan": (384.0, 0.3), "wan": (44.0, 40.0)}
