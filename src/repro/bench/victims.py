"""Victim-model provisioning with on-disk caching.

Several benchmarks need the same trained victims (AlexNet/VGG16/VGG19 on
synthetic CIFAR-10/100). Training is deterministic given the scale profile,
so models are trained once and cached as ``.npz`` under ``.cache/victims``
in the repository root; subsequent benchmark runs load in milliseconds.
"""

from __future__ import annotations

import os

import numpy as np

from ..data import SyntheticImageDataset, make_cifar10, make_cifar100
from ..models import LayeredModel, alexnet, resnet20, train_classifier, vgg16, vgg19
from ..nn import load_model, save_model
from .scale import ScaleProfile, current_scale

__all__ = ["get_dataset", "build_victim", "get_victim", "cache_directory"]

_ARCHITECTURES = {
    "alexnet": alexnet,
    "vgg16": vgg16,
    "vgg19": vgg19,
    "resnet20": resnet20,
}
_memory_cache: dict[tuple, tuple[LayeredModel, SyntheticImageDataset, float]] = {}


def cache_directory() -> str:
    root = os.environ.get(
        "C2PI_CACHE_DIR",
        os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))), ".cache"),
    )
    path = os.path.join(root, "victims")
    os.makedirs(path, exist_ok=True)
    return path


def get_dataset(name: str, scale: ScaleProfile | None = None) -> SyntheticImageDataset:
    """The synthetic dataset for ``"cifar10"`` or ``"cifar100"``."""
    scale = scale or current_scale()
    if name == "cifar10":
        return make_cifar10(train_size=scale.train_size, test_size=scale.test_size, seed=0)
    if name == "cifar100":
        # 100 classes need more images per class for the victim to learn
        # anything at the reduced profiles; triple the budget so Algorithm
        # 1's accuracy phase stays meaningful.
        return make_cifar100(
            train_size=3 * scale.train_size, test_size=scale.test_size, seed=1
        )
    raise ValueError(f"unknown dataset {name!r}")


def build_victim(arch: str, num_classes: int, scale: ScaleProfile) -> LayeredModel:
    """Fresh (untrained) victim of the requested architecture."""
    if arch not in _ARCHITECTURES:
        raise ValueError(f"unknown architecture {arch!r}; choose from {sorted(_ARCHITECTURES)}")
    return _ARCHITECTURES[arch](
        num_classes=num_classes,
        width_mult=scale.width_mult,
        rng=np.random.default_rng(hash(arch) % (2**31)),
    )


def get_victim(
    arch: str, dataset_name: str, scale: ScaleProfile | None = None
) -> tuple[LayeredModel, SyntheticImageDataset, float]:
    """A trained victim, its dataset and its test accuracy (cached)."""
    scale = scale or current_scale()
    key = (arch, dataset_name, scale.name)
    if key in _memory_cache:
        return _memory_cache[key]

    dataset = get_dataset(dataset_name, scale)
    model = build_victim(arch, dataset.num_classes, scale)
    path = os.path.join(cache_directory(), f"{arch}_{dataset_name}_{scale.name}.npz")
    meta_path = path.replace(".npz", ".acc")

    if os.path.exists(path) and os.path.exists(meta_path):
        load_model(model, path)
        model.eval()
        with open(meta_path) as handle:
            accuracy = float(handle.read().strip())
    else:
        result = train_classifier(
            model,
            dataset,
            epochs=scale.victim_epochs,
            batch_size=scale.victim_batch,
            lr=2e-3,
            seed=0,
        )
        accuracy = result.test_accuracy
        save_model(model, path)
        with open(meta_path, "w") as handle:
            handle.write(f"{accuracy:.6f}")
    model.eval()
    _memory_cache[key] = (model, dataset, accuracy)
    return _memory_cache[key]
