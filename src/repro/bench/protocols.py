"""Protocol micro-benchmark harness (``c2pi bench``).

Measures what the cost tables only model: the *online* wall time and the
exact protocol bytes of the dealer-suite primitives (DReLU, ReLU, one
max-pool tournament level, a linear layer), the offline preprocessing
material footprint per ReLU element, and an end-to-end resnet20
smoke-victim serve. The resulting JSON snapshot
(``benchmarks/BENCH_protocols.json``) records the perf trajectory of the
hot path across PRs; ``--check`` replays the bench and fails if DReLU
online latency regresses against the committed snapshot.

Online timing excludes dealer generation entirely: material is collected
offline into a bundle first and the timed run replays it through a
:class:`~repro.mpc.preprocessing.ReplayDealer`, mirroring the warm-pool
serving path.

Latency comparisons across machines are normalised by ``calibration_s``,
the time of a fixed pure-numpy uint64 workload included in every
snapshot: a fresh DReLU time is compared against
``snapshot * (fresh_calibration / snapshot_calibration)``.
"""

from __future__ import annotations

import dataclasses
import json
import time

import numpy as np

from ..mpc import Channel, FixedPointConfig, TrustedDealer
from ..mpc.preprocessing import MaterialRequest, ReplayDealer
from ..mpc.protocols import (
    secure_drelu,
    secure_linear,
    secure_maximum,
    secure_relu,
)
from ..mpc.sharing import share_additive

__all__ = [
    "CFG",
    "DEFAULT_TOLERANCE",
    "run_bench",
    "bench_ops",
    "bench_offline",
    "bench_serve",
    "bench_serve_placements",
    "calibration_workload_s",
    "check_snapshot",
    "check_serve_snapshot",
    "render_report",
    "render_serve_report",
    "material_nbytes",
    "run_from_args",
    "run_serve_from_args",
    "main",
]

CFG = FixedPointConfig()

# Regression gate (the CI contract): a fresh DReLU online time may exceed
# the committed snapshot by at most this factor after machine
# normalisation, plus a jitter floor. Shared-runner wall time swings
# ~25% run to run, so the floor absorbs that noise: the gate is meant to
# catch gross latency regressions (an accidental return to byte-per-bit
# kernels is 14x) while the deterministic byte metrics below catch
# structural drift exactly.
DEFAULT_TOLERANCE = 0.10
_ABS_SLACK_S = 2.5e-4


# ----------------------------------------------------------------------
# material helpers (representation-agnostic: byte-per-bit or packed words)
# ----------------------------------------------------------------------
class _CollectingDealer:
    """Wraps a real dealer; keeps every (request, material) pair in order."""

    def __init__(self, base: TrustedDealer):
        self.base = base
        self.items: list[tuple[MaterialRequest, object]] = []

    def _record(self, method: str, shape, material, ring_fn=None):
        self.items.append(
            (MaterialRequest(method, tuple(shape), ring_fn=ring_fn), material)
        )
        return material

    def beaver_triples(self, shape):
        return self._record("beaver_triples", shape, self.base.beaver_triples(shape))

    def bit_triples(self, shape):
        return self._record("bit_triples", shape, self.base.bit_triples(shape))

    def dabits(self, shape):
        return self._record("dabits", shape, self.base.dabits(shape))

    def comparison_masks(self, shape):
        return self._record(
            "comparison_masks", shape, self.base.comparison_masks(shape)
        )

    def linear_correlation(self, input_shape, ring_fn):
        return self._record(
            "linear_correlation",
            input_shape,
            self.base.linear_correlation(input_shape, ring_fn),
            ring_fn=ring_fn,
        )

    def take(self) -> list[tuple[MaterialRequest, object]]:
        items, self.items = self.items, []
        return items


def material_nbytes(material) -> int:
    """Total array bytes of one dealer material item (all parties' halves)."""
    total = 0
    for field in dataclasses.fields(material):
        value = getattr(material, field.name)
        if isinstance(value, tuple):
            total += sum(int(np.asarray(part).nbytes) for part in value)
        elif isinstance(value, np.ndarray):
            total += int(value.nbytes)
    return total


def _bundle_bytes_by_method(items) -> dict[str, int]:
    sizes: dict[str, int] = {}
    for request, material in items:
        sizes[request.method] = sizes.get(request.method, 0) + material_nbytes(
            material
        )
    return sizes


# ----------------------------------------------------------------------
# measurement
# ----------------------------------------------------------------------
def calibration_workload_s(repeats: int = 5) -> float:
    """Fixed pure-numpy uint64 workload used to normalise machine speed.

    Shaped like the bitsliced circuit's rounds — many XOR/AND/shift
    passes over mid-size word arrays, so numpy dispatch overhead and
    word-op throughput are weighted as the DReLU hot path weights them —
    but deliberately hand-written rather than calling the protocol code:
    a regression in the code under test must not inflate the calibration
    and cancel itself out of the gate.
    """
    rng = np.random.default_rng(0)
    a = rng.integers(0, 2**62, size=8192, dtype=np.uint64)
    b = rng.integers(0, 2**62, size=8192, dtype=np.uint64)
    shift = np.uint64(7)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        c = a
        for _ in range(60):
            c = (c ^ b) & (a >> shift)
            c = ((c | a) ^ (c >> shift)).astype(np.uint64)
        best = min(best, time.perf_counter() - start)
    return best


def _timed_runs(op, bundles, repeats: int):
    """Run ``op(replay_dealer, channel)`` once per pre-generated bundle.

    The first bundle is a discarded warmup (first-touch allocation and
    ufunc setup would otherwise pollute the smallest repeat counts).
    """
    best = float("inf")
    channel = None
    for index in range(repeats + 1):
        channel = Channel()
        replay = ReplayDealer(bundles[index])
        start = time.perf_counter()
        op(replay, channel)
        elapsed = time.perf_counter() - start
        if index > 0:
            best = min(best, elapsed)
    return best, channel


def _op_report(name: str, elements: int, best_s: float, channel: Channel) -> dict:
    return {
        "elements": elements,
        "online_s": best_s,
        "online_us_per_element": best_s * 1e6 / max(1, elements),
        "online_bytes": channel.total_bytes,
        "rounds": channel.rounds,
        # The per-round compute budget: with round counts pinned exactly
        # (below), online_s / rounds is what a transport implementation
        # gets to spend between two adjacent communication rounds.
        "online_ns_per_round": best_s * 1e9 / max(1, channel.rounds),
        "by_label_bytes": {
            label: snapshot.total_bytes
            for label, snapshot in channel.label_breakdown().items()
        },
    }


def _collect_bundles(op, seed: int, repeats: int):
    collector = _CollectingDealer(TrustedDealer(seed=seed))
    bundles = []
    for _ in range(repeats + 1):  # one extra bundle feeds the warmup run
        op(collector, Channel())
        bundles.append(collector.take())
    return bundles


def bench_ops(elements: int = 8192, repeats: int = 3) -> dict:
    """Per-op online latency/bytes for the dealer-suite hot path."""
    rng = np.random.default_rng(42)
    values = rng.uniform(-4.0, 4.0, size=(elements,)).astype(np.float32)
    x = share_additive(CFG.encode(values), rng)
    other = share_additive(
        CFG.encode(rng.uniform(-4.0, 4.0, size=(elements,)).astype(np.float32)), rng
    )

    ops = {}

    drelu = lambda dealer, channel: secure_drelu(x, dealer, channel)
    best, channel = _timed_runs(drelu, _collect_bundles(drelu, 1, repeats), repeats)
    ops["drelu"] = _op_report("drelu", elements, best, channel)

    relu = lambda dealer, channel: secure_relu(x, dealer, channel)
    best, channel = _timed_runs(relu, _collect_bundles(relu, 2, repeats), repeats)
    ops["relu"] = _op_report("relu", elements, best, channel)

    # One max-pool tournament level: a batched secure_maximum over n pairs.
    maxpool = lambda dealer, channel: secure_maximum(x, other, dealer, channel)
    best, channel = _timed_runs(
        maxpool, _collect_bundles(maxpool, 3, repeats), repeats
    )
    ops["maxpool"] = _op_report("maxpool", elements, best, channel)

    # A Delphi-style linear layer: batch 8, 256 -> 256 features.
    w_ring = CFG.encode(
        rng.uniform(-0.5, 0.5, size=(256, 256)).astype(np.float32)
    )
    lin_x = share_additive(
        CFG.encode(rng.uniform(-1, 1, size=(8, 256)).astype(np.float32)), rng
    )
    ring_fn = lambda v: np.matmul(v, w_ring.T)
    linear = lambda dealer, channel: secure_linear(
        lin_x, ring_fn, None, dealer, channel
    )
    best, channel = _timed_runs(linear, _collect_bundles(linear, 4, repeats), repeats)
    ops["linear"] = _op_report("linear", 8 * 256, best, channel)
    return ops


def bench_offline(elements: int = 8192) -> dict:
    """Preprocessing material footprint of one ReLU batch (both halves)."""
    rng = np.random.default_rng(7)
    values = rng.uniform(-4.0, 4.0, size=(elements,)).astype(np.float32)
    x = share_additive(CFG.encode(values), rng)
    collector = _CollectingDealer(TrustedDealer(seed=9))
    secure_relu(x, collector, Channel())
    by_method = _bundle_bytes_by_method(collector.items)
    total = sum(by_method.values())
    return {
        "relu_elements": elements,
        "by_method_bytes": by_method,
        "bundle_bytes": total,
        "bit_triple_bytes": by_method.get("bit_triples", 0),
        "bit_triple_bytes_per_element": by_method.get("bit_triples", 0) / elements,
        "bundle_bytes_per_element": total / elements,
    }


def bench_serve(requests: int = 2) -> dict:
    """End-to-end resnet20 smoke-victim serve (warm offline pool)."""
    from ..core import C2PIPipeline
    from ..serve.remote import _demo_victim

    victim = _demo_victim("resnet20", 0.25, 0)
    pipeline = C2PIPipeline(victim, 3.5, noise_magnitude=0.1, seed=5)
    offline_start = time.perf_counter()
    pipeline.prepare_offline(batch=1, bundles=requests)
    offline_s = time.perf_counter() - offline_start

    rng = np.random.default_rng(7)
    online_s = 0.0
    crypto_bytes = 0
    crypto_rounds = 0
    for _ in range(requests):
        image = rng.random((1, 3, 32, 32), dtype=np.float32)
        start = time.perf_counter()
        result = pipeline.infer(image)
        online_s += time.perf_counter() - start
        crypto_bytes += result.crypto_bytes
        crypto_rounds += result.crypto_rounds
    return {
        "model": "resnet20",
        "width_mult": 0.25,
        "boundary": 3.5,
        "batch": 1,
        "requests": requests,
        "offline_s": offline_s,
        "online_s": online_s,
        "amortized_online_s": online_s / requests,
        "crypto_bytes": crypto_bytes,
        "crypto_rounds": crypto_rounds,
    }


def bench_serve_placements(requests: int = 4) -> dict:
    """End-to-end resnet20 serving under all three party placements.

    Runs the identical request stream through the in-process pipeline, a
    socket-loopback client/server pair, and a shared-memory client/server
    pair (each remote placement against a fresh same-seeded ``c2pi
    serve`` *subprocess* — a genuine second party, so the shared-memory
    path is measured without GIL interference from the peer) and records
    per-placement latency plus a SHA-256 over the concatenated logits.
    The placements MUST agree byte-for-byte — the zero-copy transport
    work is only admissible because the bytes prove it changed nothing —
    and the remote placements must report ``bytes_match`` (measured
    socket/ring payload equal to the Channel accounting) on every reply.

    The resulting snapshot (``benchmarks/BENCH_serve.json``) is the
    serving-latency regression gate: see :func:`check_serve_snapshot`.
    """
    import hashlib
    import os
    import re
    import subprocess
    import sys
    from pathlib import Path

    import repro

    from ..core import C2PIPipeline
    from ..serve.remote import RemoteClient, _demo_victim

    victim = _demo_victim("resnet20", 0.25, 0)
    rng = np.random.default_rng(7)
    images = [rng.random((1, 3, 32, 32), dtype=np.float32) for _ in range(requests)]

    def _sha(logits_list) -> str:
        digest = hashlib.sha256()
        for logits in logits_list:
            digest.update(np.ascontiguousarray(logits, dtype=np.float32).tobytes())
        return digest.hexdigest()

    placements: dict[str, dict] = {}

    # -- in-process: both parties in one address space, no transport ----
    pipeline = C2PIPipeline(victim, 3.5, noise_magnitude=0.1, seed=5)
    pipeline.prepare_offline(batch=1, bundles=requests)
    times, logits = [], []
    for image in images:
        start = time.perf_counter()
        reply = pipeline.infer(image)
        times.append(time.perf_counter() - start)
        logits.append(reply.logits)
    placements["in-process"] = {
        "ms_per_inference": min(times) * 1e3,
        "amortized_ms": sum(times) * 1e3 / requests,
        "logits_sha256": _sha(logits),
    }

    # -- remote placements: fresh same-seeded server process each -------
    def _remote(shm: bool) -> dict:
        src_root = str(Path(repro.__file__).resolve().parents[1])
        # `--warm requests` pre-generates the offline pool: the
        # placement comparison measures the *online* serving path,
        # exactly like the in-process leg above (prepare_offline) — not
        # inline dealer generation.
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--listen", "127.0.0.1:0",
                "--arch", "resnet20", "--untrained-width", "0.25",
                "--model-seed", "0", "--boundary", "3.5",
                "--seed", "5", "--warm", str(requests), "--warm-batch", "1",
                "--once",
            ],
            stdout=subprocess.PIPE,
            text=True,
            env={
                **os.environ,
                "PYTHONPATH": src_root
                + os.pathsep
                + os.environ.get("PYTHONPATH", ""),
            },
        )
        try:
            line = proc.stdout.readline()
            match = re.search(r"listening on [\d.]+:(\d+)", line)
            if not match:
                raise RuntimeError(f"server did not announce a port: {line!r}")
            client = RemoteClient(
                "127.0.0.1", int(match.group(1)),
                noise_magnitude=0.1, seed=5, shm=shm,
            )
            times, logits, matches = [], [], []
            for image in images:
                start = time.perf_counter()
                reply = client.infer(image)
                times.append(time.perf_counter() - start)
                logits.append(reply.logits)
                matches.append(bool(reply.bytes_match))
            shm_active = client.shm_active
            client.close()
            proc.wait(timeout=30.0)
        finally:
            if proc.poll() is None:  # pragma: no cover - crashed run
                proc.kill()
                proc.wait()
            proc.stdout.close()
        return {
            "ms_per_inference": min(times) * 1e3,
            "amortized_ms": sum(times) * 1e3 / requests,
            "logits_sha256": _sha(logits),
            "bytes_match": all(matches),
            "shm_active": shm_active,
        }

    placements["socket-loopback"] = _remote(shm=False)
    placements["shared-memory"] = _remote(shm=True)

    shas = {p["logits_sha256"] for p in placements.values()}
    return {
        "schema": 1,
        "model": "resnet20",
        "width_mult": 0.25,
        "boundary": 3.5,
        "batch": 1,
        "requests": requests,
        "calibration_s": calibration_workload_s(),
        "placements": placements,
        "logits_identical": len(shas) == 1,
        "logits_sha256": placements["in-process"]["logits_sha256"],
        "best_ms_per_inference": min(
            p["ms_per_inference"] for p in placements.values()
        ),
    }


def check_serve_snapshot(
    fresh: dict, snapshot: dict, tolerance: float = DEFAULT_TOLERANCE
) -> list[str]:
    """Compare a fresh placement bench against the committed snapshot.

    Identity metrics (placement agreement, byte accounting, the logits
    hash itself — the full request stream is seeded) must hold exactly;
    per-placement latency is gated after calibration normalisation like
    the protocol bench's latency gates.
    """
    failures: list[str] = []
    if not fresh.get("logits_identical"):
        shas = {
            name: p.get("logits_sha256")
            for name, p in fresh.get("placements", {}).items()
        }
        failures.append(f"placements disagree on logits: {shas}")
    for name, placement in fresh.get("placements", {}).items():
        if "bytes_match" in placement and not placement["bytes_match"]:
            failures.append(
                f"{name}: measured wire payload diverged from Channel accounting"
            )
    if not fresh.get("placements", {}).get("shared-memory", {}).get(
        "shm_active", False
    ):
        failures.append("shared-memory placement fell back to the socket path")
    if fresh.get("logits_sha256") != snapshot.get("logits_sha256"):
        failures.append(
            f"serve logits drifted: {fresh.get('logits_sha256')} vs snapshot "
            f"{snapshot.get('logits_sha256')}"
        )
    scale = fresh["calibration_s"] / max(snapshot["calibration_s"], 1e-9)
    for name, placement in snapshot.get("placements", {}).items():
        ours = fresh.get("placements", {}).get(name)
        if ours is None:
            failures.append(f"placement missing from fresh run: {name}")
            continue
        # Remote placements ping-pong two OS processes per round, so
        # their latency rides the host scheduler: give them a doubled
        # relative band plus a wide absolute floor. The in-process leg
        # (the acceptance number) keeps the tight protocol-bench gate.
        if name == "in-process":
            slack, abs_ms = tolerance, 1.0
        else:
            slack, abs_ms = 2.0 * tolerance, 10.0
        budget = placement["ms_per_inference"] * scale * (1.0 + slack) + abs_ms
        if ours["ms_per_inference"] > budget:
            failures.append(
                f"{name} serve latency regressed: "
                f"{ours['ms_per_inference']:.2f} ms vs budget {budget:.2f} ms "
                f"(snapshot {placement['ms_per_inference']:.2f} ms, machine "
                f"scale x{scale:.2f}, tolerance {slack:.0%})"
            )
    return failures


def render_serve_report(report: dict) -> str:
    lines = [
        f"serve placements ({report['model']} b={report['boundary']}, "
        f"{report['requests']} requests, "
        f"logits identical: {report['logits_identical']})"
    ]
    for name, placement in report["placements"].items():
        extra = ""
        if "bytes_match" in placement:
            extra = f"  bytes_match={placement['bytes_match']}"
        if "shm_active" in placement:
            extra += f"  shm={placement['shm_active']}"
        lines.append(
            f"  {name:<16} {placement['ms_per_inference']:8.2f} ms/inference "
            f"(amortized {placement['amortized_ms']:.2f} ms){extra}"
        )
    return "\n".join(lines)


def run_serve_from_args(args) -> int:
    """Execute the placement bench for a parsed argument namespace."""
    report = bench_serve_placements(args.requests)
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(render_serve_report(report))
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.output}")
    if args.check:
        with open(args.check) as handle:
            snapshot = json.load(handle)
        tolerance = (
            args.tolerance if args.tolerance is not None else DEFAULT_TOLERANCE
        )
        failures = check_serve_snapshot(report, snapshot, tolerance)
        for failure in failures:
            print(f"SERVE BENCH REGRESSION: {failure}")
        if failures:
            return 1
        print(f"serve bench check against {args.check}: ok")
    return 0


def _boolean_words_packed() -> bool:
    """True when the dealer emits packed uint64 boolean material."""
    probe = TrustedDealer(seed=0).bit_triples((1,))
    return np.asarray(probe.a[0]).dtype == np.uint64


def run_bench(
    elements: int = 8192, repeats: int = 3, serve_requests: int = 2
) -> dict:
    """The full harness; returns the JSON-able snapshot dict."""
    report = {
        "schema": 1,
        "boolean_words_packed": _boolean_words_packed(),
        "calibration_s": calibration_workload_s(),
        "elements": elements,
        "repeats": repeats,
        "ops": bench_ops(elements, repeats),
        "offline": bench_offline(elements),
    }
    if serve_requests:
        report["serve"] = bench_serve(serve_requests)
    return report


# ----------------------------------------------------------------------
# snapshot regression check
# ----------------------------------------------------------------------
def check_snapshot(
    fresh: dict, snapshot: dict, tolerance: float = DEFAULT_TOLERANCE
) -> list[str]:
    """Compare a fresh run against a committed snapshot.

    Returns a list of human-readable failures (empty = pass). Byte
    metrics are deterministic and must match exactly when both runs use
    the same representation; DReLU latency is compared after machine
    normalisation via the calibration workload.
    """
    failures: list[str] = []
    if fresh.get("boolean_words_packed") != snapshot.get("boolean_words_packed"):
        failures.append(
            "representation mismatch: fresh boolean_words_packed="
            f"{fresh.get('boolean_words_packed')} vs snapshot "
            f"{snapshot.get('boolean_words_packed')} — refresh the snapshot"
        )
        return failures

    if fresh.get("elements") != snapshot.get("elements"):
        # Neither the byte metrics nor the latency budget are comparable
        # across workload sizes — make mismatched use an explicit error
        # instead of a spurious failure or a vacuous pass.
        failures.append(
            f"element count mismatch: fresh {fresh.get('elements')} vs "
            f"snapshot {snapshot.get('elements')} — rerun with matching "
            "--elements"
        )
        return failures

    for op in ("drelu", "relu", "maxpool", "linear"):
        ours = fresh["ops"][op]["online_bytes"]
        theirs = snapshot["ops"][op]["online_bytes"]
        if ours != theirs:
            failures.append(
                f"{op} online bytes drifted: {ours} vs snapshot {theirs}"
            )
        ours = fresh["ops"][op]["rounds"]
        theirs = snapshot["ops"][op].get("rounds")
        if theirs is not None and ours != theirs:
            # Rounds are deterministic, and they are the denominator of
            # the ns-per-round budget: a drifted count voids the budget
            # comparison as well as the protocol structure.
            failures.append(f"{op} round count drifted: {ours} vs snapshot {theirs}")
    ours = fresh["offline"]["bit_triple_bytes_per_element"]
    theirs = snapshot["offline"]["bit_triple_bytes_per_element"]
    if ours != theirs:
        failures.append(
            "offline bit-triple bytes/element drifted: "
            f"{ours} vs snapshot {theirs}"
        )

    scale = fresh["calibration_s"] / max(snapshot["calibration_s"], 1e-9)
    for op in ("drelu", "relu"):
        budget = (
            snapshot["ops"][op]["online_s"] * scale * (1.0 + tolerance)
            + _ABS_SLACK_S
        )
        measured = fresh["ops"][op]["online_s"]
        if measured > budget:
            failures.append(
                f"{op} online latency regressed: {measured * 1e3:.2f} ms vs "
                f"budget {budget * 1e3:.2f} ms (snapshot "
                f"{snapshot['ops'][op]['online_s'] * 1e3:.2f} ms, machine "
                f"scale x{scale:.2f}, tolerance {tolerance:.0%})"
            )
    return failures


# ----------------------------------------------------------------------
# rendering / CLI
# ----------------------------------------------------------------------
def render_report(report: dict) -> str:
    lines = [
        "protocol bench "
        f"(packed words: {report['boolean_words_packed']}, "
        f"calibration {report['calibration_s'] * 1e3:.1f} ms)"
    ]
    for name, op in report["ops"].items():
        per_round = op.get(
            "online_ns_per_round", op["online_s"] * 1e9 / max(1, op["rounds"])
        )
        lines.append(
            f"  {name:<8} {op['elements']:>7d} elems  "
            f"{op['online_s'] * 1e3:8.2f} ms online  "
            f"{op['online_bytes'] / 1e3:10.1f} KB  {op['rounds']:3d} rounds  "
            f"{per_round / 1e3:8.1f} us/round"
        )
    offline = report["offline"]
    lines.append(
        f"  offline  bit-triples {offline['bit_triple_bytes_per_element']:.1f} "
        f"B/elem, bundle {offline['bundle_bytes_per_element']:.1f} B/elem"
    )
    if "serve" in report:
        serve = report["serve"]
        lines.append(
            f"  serve    {serve['model']} b={serve['boundary']} "
            f"{serve['amortized_online_s'] * 1e3:8.1f} ms/inference online "
            f"({serve['crypto_bytes'] / 1e6:.2f} MB, {serve['crypto_rounds']} "
            "rounds total)"
        )
    return "\n".join(lines)


def run_from_args(args) -> int:
    """Execute the bench for a parsed argument namespace."""
    report = run_bench(args.elements, args.repeats, args.serve_requests)
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(render_report(report))
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.output}")
    if args.check:
        with open(args.check) as handle:
            snapshot = json.load(handle)
        tolerance = (
            args.tolerance if args.tolerance is not None else DEFAULT_TOLERANCE
        )
        failures = check_snapshot(report, snapshot, tolerance)
        for failure in failures:
            print(f"BENCH REGRESSION: {failure}")
        if failures:
            return 1
        print(f"bench check against {args.check}: ok")
    return 0


def main(argv: list[str] | None = None) -> int:
    import argparse

    from ..cli import add_bench_arguments

    parser = argparse.ArgumentParser(
        description="C2PI protocol micro-benchmarks (per-op online "
        "latency/bytes, offline material, resnet20 serve)"
    )
    add_bench_arguments(parser)
    return run_from_args(parser.parse_args(argv))
