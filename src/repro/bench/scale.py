"""Experiment scale profiles.

The paper's experiments (full-width VGG networks, 1000 attack images,
10 000 MLA iterations, an A100 GPU) do not fit a CPU-only session, so every
benchmark reads its budgets from a :class:`ScaleProfile`:

* ``smoke`` (default) — width-scaled models and small attack budgets;
  every experiment's *code path* is identical to the paper's, only the
  iteration counts shrink. Minutes on a laptop CPU.
* ``small`` — intermediate fidelity.
* ``paper`` — the paper's budgets (hours to days on CPU; intended for
  GPU-backed numpy drop-ins or patient reruns).

Select with the ``C2PI_SCALE`` environment variable.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = ["ScaleProfile", "PROFILES", "current_scale"]


@dataclass(frozen=True)
class ScaleProfile:
    """All experiment budgets in one place."""

    name: str
    width_mult: float  # victim channel scaling
    train_size: int  # victim training images
    test_size: int  # accuracy evaluation images
    victim_epochs: int
    victim_batch: int
    attacker_images: int  # images the server trains inversion nets on
    eval_images: int  # images attacked for SSIM measurement
    attack_epochs: int
    attack_batch: int
    mla_iterations: int
    layer_stride: int  # attack every k-th conv layer in sweeps
    attack_lr: float = 2e-3  # paper uses 1e-3 with 10-epoch budgets

    def conv_grid(self, conv_ids: list[int]) -> list[float]:
        """Sub-sampled conv-layer grid, always keeping the first and last."""
        grid = [float(c) for c in conv_ids[:: self.layer_stride]]
        if float(conv_ids[-1]) not in grid:
            grid.append(float(conv_ids[-1]))
        return grid


PROFILES = {
    "smoke": ScaleProfile(
        name="smoke",
        width_mult=0.25,
        train_size=400,
        test_size=128,
        victim_epochs=2,
        victim_batch=32,
        attacker_images=96,
        eval_images=8,
        attack_epochs=2,
        attack_batch=32,
        mla_iterations=120,
        layer_stride=2,
        attack_lr=2e-3,
    ),
    "small": ScaleProfile(
        name="small",
        width_mult=0.5,
        train_size=1200,
        test_size=256,
        victim_epochs=4,
        victim_batch=64,
        attacker_images=256,
        eval_images=32,
        attack_epochs=4,
        attack_batch=32,
        mla_iterations=400,
        layer_stride=1,
        attack_lr=2e-3,
    ),
    "paper": ScaleProfile(
        name="paper",
        width_mult=1.0,
        train_size=20000,
        test_size=2000,
        victim_epochs=10,
        victim_batch=128,
        attacker_images=2000,
        eval_images=1000,
        attack_epochs=10,
        attack_batch=64,
        mla_iterations=10000,
        layer_stride=1,
        attack_lr=1e-3,  # the paper's stated rate
    ),
}


def current_scale() -> ScaleProfile:
    """The active profile (``C2PI_SCALE`` env var, default ``smoke``)."""
    name = os.environ.get("C2PI_SCALE", "smoke").lower()
    if name not in PROFILES:
        raise ValueError(f"unknown C2PI_SCALE {name!r}; choose from {sorted(PROFILES)}")
    return PROFILES[name]
