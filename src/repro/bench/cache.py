"""Cross-benchmark memoisation.

Figure 8 and Table I consume the same per-victim boundary analysis (a DINA
sweep plus noised-accuracy checks); this module computes it once per
(architecture, dataset) pair per process so the two benchmarks do not pay
for the attack training twice.
"""

from __future__ import annotations

from .harness import BoundaryAnalysis, run_boundary_analysis
from .scale import current_scale
from .victims import get_victim

__all__ = ["boundary_analysis_cached"]

_cache: dict[tuple, BoundaryAnalysis] = {}


def boundary_analysis_cached(
    arch: str,
    dataset_name: str,
    sigmas: tuple[float, ...] = (0.2, 0.3),
) -> BoundaryAnalysis:
    scale = current_scale()
    key = (arch, dataset_name, scale.name, sigmas)
    if key not in _cache:
        model, dataset, accuracy = get_victim(arch, dataset_name, scale)
        _cache[key] = run_boundary_analysis(
            model, dataset, scale, baseline_accuracy=accuracy, sigmas=sigmas
        )
    return _cache[key]
