"""``repro.bench`` — shared experiment harness behind ``benchmarks/``."""

from . import paper_data
from .harness import (
    BoundaryAnalysis,
    CostRow,
    make_attack_factory,
    render_table,
    run_boundary_analysis,
    run_cost_comparison,
    run_idpa_comparison,
    run_noise_accuracy,
    run_noise_defense,
)
from .scale import PROFILES, ScaleProfile, current_scale
from .victims import build_victim, get_dataset, get_victim

__all__ = [
    "paper_data",
    "ScaleProfile",
    "PROFILES",
    "current_scale",
    "get_victim",
    "get_dataset",
    "build_victim",
    "make_attack_factory",
    "run_idpa_comparison",
    "run_noise_defense",
    "run_noise_accuracy",
    "BoundaryAnalysis",
    "run_boundary_analysis",
    "CostRow",
    "run_cost_comparison",
    "render_table",
]
