"""Reproduction of *C2PI: An Efficient Crypto-Clear Two-Party Neural Network
Private Inference* (Zhang et al., DAC 2023).

Subpackages
-----------
``repro.nn``
    From-scratch numpy autograd deep-learning substrate.
``repro.models``
    AlexNet/VGG victim models, inversion-attack architectures, layer
    indexing that matches the paper's "layer 3 / layer 3.5" notation.
``repro.data``
    Deterministic synthetic CIFAR-10/100 stand-ins (offline environment).
``repro.metrics``
    SSIM (Wang et al. 2004), PSNR, classification accuracy.
``repro.attacks``
    Inference-data-privacy attacks: MLA, INA, EINA and the paper's DINA.
``repro.mpc``
    Semi-honest two-party secure computation engine with a trusted dealer,
    plus Delphi/Cheetah cost profiles and LAN/WAN latency simulation.
``repro.core``
    The C2PI contribution: noise mechanism, boundary search (Algorithm 1)
    and the end-to-end crypto-clear inference pipeline.
``repro.serve``
    Batched serving: one compiled ``SecureProgram``, warm offline
    preprocessing pools, request coalescing and throughput metrics.
``repro.bench``
    Shared experiment harness behind ``benchmarks/`` with the paper's
    reference numbers.
"""

__version__ = "1.1.0"

__all__ = ["nn", "models", "data", "metrics", "attacks", "mpc", "core", "serve", "bench"]
