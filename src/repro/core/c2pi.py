"""The C2PI crypto-clear private-inference pipeline (Figure 2).

One :class:`C2PIPipeline` fixes a victim model, a boundary layer and a
noise magnitude, then serves inferences:

1. **Crypto phase** — the layers up to the boundary run under the 2PC
   engine (:mod:`repro.mpc.engine`); both parties end holding additive
   shares of the boundary activation.
2. **Reveal** — the client perturbs its share with uniform noise and sends
   it to the server (one message of boundary size).
3. **Clear phase** — the server reconstructs ``M_l(x) + Delta`` and runs
   the remaining layers in plaintext, entirely locally, then returns the
   prediction to the client.

The server's whole view of the client's data is the noised boundary
activation (plus protocol messages that are individually uniform) — this is
exactly what the IDPAs of :mod:`repro.attacks` consume, closing the loop
between the privacy evaluation and the deployed pipeline. Setting the
boundary to the last layer recovers standard full PI (zero clear layers),
which is how the Table II baselines are produced.

The pipeline compiles its crypto segment into a
:class:`~repro.mpc.program.SecureProgram` once at construction and can
split the work into a real offline/online phase pair:
:meth:`C2PIPipeline.prepare_offline` fills per-batch preprocessing pools
(:mod:`repro.mpc.preprocessing`), after which :meth:`C2PIPipeline.infer`
consumes pooled material and performs zero dealer generation online.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from .. import nn
from ..models.layered import LayeredModel
from ..mpc.costs import BackendCostModel, CostEstimate
from ..mpc.engine import LayerTally, SecureInferenceEngine
from ..mpc.fixedpoint import DEFAULT_CONFIG, FixedPointConfig
from ..mpc.network import NetworkModel, TrafficSnapshot
from ..mpc.preprocessing import PreprocessingPool
from ..mpc.program import SecureProgram, compile_program, split_macs
from .noise import NoiseMechanism

__all__ = ["C2PIResult", "C2PIPipeline", "full_pi_tallies"]


@dataclass
class C2PIResult:
    """Outcome of one C2PI inference."""

    logits: np.ndarray
    server_view: np.ndarray  # the noised boundary activation
    boundary: float
    crypto_bytes: int
    crypto_rounds: int
    reveal_bytes: int
    tallies: list[LayerTally]
    traffic_by_label: dict[str, TrafficSnapshot] = field(default_factory=dict)
    online_s: float = 0.0
    used_pool: bool = False

    @property
    def prediction(self) -> np.ndarray:
        return self.logits.argmax(axis=1)

    @property
    def total_bytes(self) -> int:
        return self.crypto_bytes + self.reveal_bytes


class C2PIPipeline:
    """Serve private inferences with a crypto/clear split at ``boundary``."""

    def __init__(
        self,
        model: LayeredModel,
        boundary: float,
        noise_magnitude: float = 0.1,
        config: FixedPointConfig = DEFAULT_CONFIG,
        seed: int = 0,
        program: SecureProgram | None = None,
    ):
        self.model = model
        self.boundary = boundary
        self.config = config
        self.noise = NoiseMechanism(noise_magnitude, seed=seed)
        self.program = (
            program
            if program is not None
            else compile_program(model, boundary, config)
        )
        self.engine = SecureInferenceEngine.from_program(
            self.program, dealer_seed=seed, share_seed=seed + 1
        )
        self._pools: dict[int, PreprocessingPool] = {}

    # ------------------------------------------------------------------
    def prepare_offline(
        self, batch: int = 1, bundles: int = 1, background: bool = False
    ) -> PreprocessingPool:
        """Run the offline phase: pool ``bundles`` sets of correlated
        randomness for ``batch``-sized requests.

        The pool's dealer is seeded like the engine's, so warm-pool
        inference is byte-identical to the single-shot path. With
        ``background=True`` generation happens in a daemon thread and
        ``infer`` joins it on demand.
        """
        pool = self._pools.get(batch)
        if pool is None:
            pool = PreprocessingPool(
                self.program, batch, dealer_seed=self.engine.dealer_seed
            )
            self._pools[batch] = pool
        if bundles:
            (pool.refill_async if background else pool.refill)(bundles)
        return pool

    def pool_stats(self) -> dict[int, dict]:
        """Offline-phase counters per batch size (serving metrics)."""
        return {batch: pool.stats.as_dict() for batch, pool in self._pools.items()}

    # ------------------------------------------------------------------
    def infer(self, images: np.ndarray) -> C2PIResult:
        """Run the full protocol on a float NCHW batch.

        When :meth:`prepare_offline` has pooled material for this batch
        size, only that material is consumed — the engine's dealer
        generates nothing online.
        """
        pool = self._pools.get(images.shape[0])
        # Acquisition happens outside the online clock: a pool miss refills
        # synchronously, and those seconds are offline work (the pool books
        # them under stats.offline_seconds).
        material = pool.acquire() if pool is not None else None
        start = time.perf_counter()
        execution = self.engine.run(images, material=material)
        crypto_bytes = execution.channel.total_bytes
        crypto_rounds = execution.channel.rounds

        # The client perturbs its share and reveals it (one more message).
        client_share = self.noise.perturb_share(execution.shares[0], self.config)
        reveal_bytes = client_share.nbytes
        execution.channel.send(0, reveal_bytes, label="noised-reveal")
        execution.channel.tick_round("noised-reveal")

        # Server-side reconstruction and clear-layer evaluation.
        boundary_ring = (client_share + execution.shares[1]).astype(np.uint64)
        server_view = self.config.decode(boundary_ring)
        with nn.no_grad():
            logits = self.model.forward_from(nn.Tensor(server_view), self.boundary).data

        return C2PIResult(
            logits=logits,
            server_view=server_view,
            boundary=self.boundary,
            crypto_bytes=crypto_bytes,
            crypto_rounds=crypto_rounds,
            reveal_bytes=reveal_bytes,
            tallies=execution.tallies,
            traffic_by_label=execution.channel.label_breakdown(),
            online_s=time.perf_counter() - start,
            used_pool=material is not None,
        )

    # ------------------------------------------------------------------
    def cost_estimate(
        self, backend: BackendCostModel, batch: int = 1
    ) -> CostEstimate:
        """Modeled backend cost of the crypto phase plus the reveal.

        Clear-layer compute is plaintext inference on the server; it is
        charged at a nominal 0.5 ns/MAC (three to four orders of magnitude
        below the cryptographic per-op costs, matching the paper's framing
        that clear layers are effectively free).
        """
        estimate = CostEstimate.from_tallies(self.program.tallies(batch), backend)
        boundary_elements = batch * int(np.prod(self.program.output_shape))
        estimate.online_bytes += boundary_elements * 8  # the noised reveal
        estimate.rounds += 1
        clear_macs = split_macs(self.model, self.boundary, batch)[1]
        estimate.compute_s += clear_macs * 0.5e-9
        return estimate

    def latency(self, backend: BackendCostModel, network: NetworkModel) -> float:
        return self.cost_estimate(backend).latency(network)


def full_pi_tallies(model: LayeredModel, batch: int = 1) -> list[LayerTally]:
    """Tallies for conventional full PI (every layer under MPC).

    Full PI is the boundary-at-the-last-layer special case of C2PI; these
    tallies feed the Table II baselines.
    """
    last = model.layer_ids[-1]
    return compile_program(model, last, encode_weights=False).tallies(batch)
