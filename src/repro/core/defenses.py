"""Client-side defences against inference-data-privacy attacks.

The paper's C2PI uses uniform additive noise (Section III-A); its
conclusion lists "exploring and applying more defenses against IDPA" as
future work. This module implements that extension: a common
:class:`Defense` interface with the paper's uniform mechanism plus three
alternatives from the split-learning defence literature, all applicable at
the boundary reveal:

* :class:`UniformNoiseDefense` — the paper's mechanism (wraps
  :class:`~repro.core.noise.NoiseMechanism`);
* :class:`GaussianNoiseDefense` — Gaussian perturbation (Titcombe et al.);
* :class:`TopKPruningDefense` — keep only the k largest activations per
  sample, zeroing the rest (feature pruning);
* :class:`QuantizationDefense` — coarse activation quantisation
  (the binarised-split-learning direction of Pham et al., generalised to
  b-bit levels).

``benchmarks/test_ablation_defenses.py`` compares them on equal footing:
DINA SSIM vs accuracy at a fixed boundary.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..models.layered import LayeredModel

__all__ = [
    "Defense",
    "UniformNoiseDefense",
    "GaussianNoiseDefense",
    "TopKPruningDefense",
    "QuantizationDefense",
    "defended_accuracy",
]


class Defense:
    """Perturbs the boundary activation the server gets to see."""

    name = "identity"

    def apply(self, activation: np.ndarray) -> np.ndarray:
        """Return the server-visible version of the activation."""
        return activation

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class UniformNoiseDefense(Defense):
    """The paper's mechanism: elementwise U(-magnitude, +magnitude) noise."""

    name = "uniform"

    def __init__(self, magnitude: float, seed: int = 0):
        if magnitude < 0:
            raise ValueError("magnitude must be non-negative")
        self.magnitude = magnitude
        self.rng = np.random.default_rng(seed)

    def apply(self, activation: np.ndarray) -> np.ndarray:
        noise = self.rng.uniform(-self.magnitude, self.magnitude, activation.shape)
        return (activation + noise.astype(activation.dtype)).astype(activation.dtype)


class GaussianNoiseDefense(Defense):
    """Zero-mean Gaussian perturbation with standard deviation sigma."""

    name = "gaussian"

    def __init__(self, sigma: float, seed: int = 0):
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        self.sigma = sigma
        self.rng = np.random.default_rng(seed)

    def apply(self, activation: np.ndarray) -> np.ndarray:
        noise = self.rng.normal(0.0, self.sigma, activation.shape)
        return (activation + noise.astype(activation.dtype)).astype(activation.dtype)


class TopKPruningDefense(Defense):
    """Keep the fraction ``keep_ratio`` of largest-magnitude activations.

    Pruning destroys the low-magnitude structure inversion networks feed
    on while preserving the dominant features classification needs.
    """

    name = "topk"

    def __init__(self, keep_ratio: float):
        if not 0.0 < keep_ratio <= 1.0:
            raise ValueError("keep_ratio must be in (0, 1]")
        self.keep_ratio = keep_ratio

    def apply(self, activation: np.ndarray) -> np.ndarray:
        flat = activation.reshape(activation.shape[0], -1)
        keep = max(1, int(round(self.keep_ratio * flat.shape[1])))
        output = np.zeros_like(flat)
        index = np.argpartition(np.abs(flat), -keep, axis=1)[:, -keep:]
        rows = np.arange(flat.shape[0])[:, None]
        output[rows, index] = flat[rows, index]
        return output.reshape(activation.shape)


class QuantizationDefense(Defense):
    """Quantise activations to ``2**bits`` uniform levels over their range."""

    name = "quantize"

    def __init__(self, bits: int):
        if bits < 1:
            raise ValueError("bits must be >= 1")
        self.bits = bits

    def apply(self, activation: np.ndarray) -> np.ndarray:
        levels = (1 << self.bits) - 1
        low = activation.min(axis=tuple(range(1, activation.ndim)), keepdims=True)
        high = activation.max(axis=tuple(range(1, activation.ndim)), keepdims=True)
        span = np.where(high > low, high - low, 1.0)
        normalised = (activation - low) / span
        quantised = np.round(normalised * levels) / levels
        return (quantised * span + low).astype(activation.dtype)


def defended_accuracy(
    model: LayeredModel,
    layer_id: float,
    defense: Defense,
    images: np.ndarray,
    labels: np.ndarray,
    batch_size: int = 128,
) -> float:
    """Accuracy when the defended activation enters the clear layers."""
    was_training = model.training
    model.eval()
    correct = 0
    try:
        with nn.no_grad():
            for start in range(0, len(labels), batch_size):
                batch = images[start : start + batch_size]
                h = model.forward_to(nn.Tensor(batch), layer_id).data
                h = defense.apply(h)
                logits = model.forward_from(nn.Tensor(h), layer_id).data
                correct += int(
                    (logits.argmax(axis=1) == labels[start : start + batch_size]).sum()
                )
    finally:
        model.train(was_training)
    return correct / len(labels)
