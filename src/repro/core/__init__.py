"""``repro.core`` — the C2PI contribution: noise, boundary search, pipeline."""

from .boundary import BoundarySearch, BoundarySearchConfig, BoundarySearchResult
from .c2pi import C2PIPipeline, C2PIResult, full_pi_tallies
from .defenses import (
    Defense,
    GaussianNoiseDefense,
    QuantizationDefense,
    TopKPruningDefense,
    UniformNoiseDefense,
    defended_accuracy,
)
from .noise import NoiseMechanism, noised_accuracy

__all__ = [
    "NoiseMechanism",
    "noised_accuracy",
    "BoundarySearch",
    "BoundarySearchConfig",
    "BoundarySearchResult",
    "C2PIPipeline",
    "C2PIResult",
    "full_pi_tallies",
    "Defense",
    "UniformNoiseDefense",
    "GaussianNoiseDefense",
    "TopKPruningDefense",
    "QuantizationDefense",
    "defended_accuracy",
]
