"""The client-side noise mechanism of C2PI.

Before revealing its share of the boundary activation to the server, the
client adds uniform noise ``Delta ~ U(-lambda, lambda)`` elementwise
(Section III-A, following Titcombe et al. and Pham et al.). The server then
reconstructs ``M_l(x) + Delta`` — the perturbation simultaneously degrades
IDPAs (Figure 6) and, if too large, the inference accuracy (Figure 7).
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..metrics import evaluate_accuracy
from ..models.layered import LayeredModel
from ..mpc.fixedpoint import FixedPointConfig

__all__ = ["NoiseMechanism", "noised_accuracy"]


class NoiseMechanism:
    """Uniform noise generator applied by the client.

    Works in both domains: on float activations (for attack simulations)
    and on fixed-point ring shares (inside the C2PI pipeline, where the
    noise is added to the client's share before the reveal).
    """

    def __init__(self, magnitude: float, seed: int = 0):
        if magnitude < 0:
            raise ValueError(f"noise magnitude must be non-negative, got {magnitude}")
        self.magnitude = float(magnitude)
        self.rng = np.random.default_rng(seed)

    def sample(self, shape) -> np.ndarray:
        """Draw a noise tensor Delta ~ U(-lambda, lambda)."""
        if self.magnitude == 0.0:
            return np.zeros(shape, dtype=np.float32)
        return self.rng.uniform(-self.magnitude, self.magnitude, size=shape).astype(
            np.float32
        )

    def perturb(self, activation: np.ndarray) -> np.ndarray:
        """Float-domain perturbation (attack simulations, Figures 6-7)."""
        return activation + self.sample(activation.shape)

    def perturb_share(
        self, share: np.ndarray, config: FixedPointConfig
    ) -> np.ndarray:
        """Ring-domain perturbation of the client's additive share.

        Adding ``encode(Delta)`` to one share shifts the reconstructed
        value by exactly ``Delta`` (up to encoding precision).
        """
        noise = config.encode(self.sample(share.shape))
        return (share + noise).astype(np.uint64)


def noised_accuracy(
    model: LayeredModel,
    layer_id: float,
    magnitude: float,
    images: np.ndarray,
    labels: np.ndarray,
    seed: int = 0,
    batch_size: int = 128,
) -> float:
    """Accuracy when the activation entering the clear layers is noised.

    This is the quantity ``accuracy(l, lambda)`` of Algorithm 1 and the
    y-axis of Figure 7: feed ``M_l(x) + Delta`` into the remaining layers
    and measure top-1 accuracy.
    """
    mechanism = NoiseMechanism(magnitude, seed=seed)
    was_training = model.training
    model.eval()
    correct = 0
    try:
        with nn.no_grad():
            for start in range(0, len(labels), batch_size):
                batch = images[start : start + batch_size]
                h = model.forward_to(nn.Tensor(batch), layer_id).data
                h = mechanism.perturb(h)
                logits = model.forward_from(nn.Tensor(h), layer_id).data
                correct += int(
                    (logits.argmax(axis=1) == labels[start : start + batch_size]).sum()
                )
    finally:
        model.train(was_training)
    return correct / len(labels)
