"""Crypto-clear boundary search — Algorithm 1 of the paper.

Phase 1 sweeps layers from the tail toward the head, attacking each with
the configured IDPA, until the attack starts *succeeding* (average SSIM at
or above the failure threshold sigma); the candidate boundary is one layer
later. Phase 2 verifies that injecting the client's uniform noise at the
candidate boundary keeps accuracy above the agreed threshold delta, pushing
the boundary later until it does.

In the semi-honest threat model the server executes this faithfully (a
third-party notary can audit it); the reproduction exposes every
intermediate measurement in :class:`BoundarySearchResult` so the audit
trail — and Figure 8 — can be regenerated.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..attacks.evaluation import AttackFactory
from ..models.layered import LayeredModel
from .noise import noised_accuracy

__all__ = ["BoundarySearchConfig", "BoundarySearchResult", "BoundarySearch"]


@dataclass
class BoundarySearchConfig:
    """Parameters of Algorithm 1.

    Attributes
    ----------
    ssim_threshold:
        sigma — the IDPA failure threshold (paper: 0.2 or 0.3).
    accuracy_drop:
        delta expressed as the tolerated drop below the noise-free baseline
        (paper: 2.5 percentage points, after Cho et al. 2022).
    noise_magnitude:
        lambda — the client's uniform-noise magnitude (paper: 0.1).
    layer_ids:
        Candidate boundary positions, ascending. Defaults to the victim's
        conv ids (the granularity of the paper's figures); pass
        ``model.layer_ids`` for the finest (x.5) granularity.
    """

    ssim_threshold: float = 0.3
    accuracy_drop: float = 0.025
    noise_magnitude: float = 0.1
    layer_ids: list[float] | None = None
    seed: int = 0


@dataclass
class BoundarySearchResult:
    """Everything Algorithm 1 measured on its way to the boundary."""

    boundary: float
    phase1_layer: float  # l' where the IDPA first succeeds (tail sweep)
    baseline_accuracy: float
    ssim_per_layer: dict[float, float] = field(default_factory=dict)
    accuracy_per_layer: dict[float, float] = field(default_factory=dict)

    @property
    def boundary_accuracy(self) -> float:
        return self.accuracy_per_layer[self.boundary]


class BoundarySearch:
    """Runs Algorithm 1 for one victim model and one attack family."""

    def __init__(
        self,
        model: LayeredModel,
        attack_factory: AttackFactory,
        attacker_images: np.ndarray,
        eval_images: np.ndarray,
        test_images: np.ndarray,
        test_labels: np.ndarray,
        config: BoundarySearchConfig | None = None,
    ):
        self.model = model
        self.attack_factory = attack_factory
        self.attacker_images = attacker_images
        self.eval_images = eval_images
        self.test_images = test_images
        self.test_labels = test_labels
        self.config = config or BoundarySearchConfig()
        self._rng = np.random.default_rng(self.config.seed)
        self._ssim_cache: dict[float, float] = {}

    # ------------------------------------------------------------------
    def _attack_ssim(self, layer_id: float) -> float:
        """IDPA(l) of Algorithm 1: average SSIM of the attack at a layer."""
        if layer_id not in self._ssim_cache:
            attack = self.attack_factory(self.model, layer_id)
            attack.prepare(self.attacker_images)
            result = attack.evaluate(
                self.eval_images,
                noise_magnitude=self.config.noise_magnitude,
                rng=self._rng,
            )
            self._ssim_cache[layer_id] = result.avg_ssim
        return self._ssim_cache[layer_id]

    def _accuracy(self, layer_id: float) -> float:
        return noised_accuracy(
            self.model,
            layer_id,
            self.config.noise_magnitude,
            self.test_images,
            self.test_labels,
            seed=self.config.seed,
        )

    # ------------------------------------------------------------------
    def run(self) -> BoundarySearchResult:
        layers = (
            self.config.layer_ids
            if self.config.layer_ids is not None
            else [float(i) for i in self.model.conv_ids]
        )
        layers = sorted(layers)
        if not layers:
            raise ValueError("no candidate layers to search")
        sigma = self.config.ssim_threshold

        # Phase 1 (lines 1-6): sweep from the tail while the attack fails.
        ssim_per_layer: dict[float, float] = {}
        index = len(layers) - 1
        score = self._attack_ssim(layers[index])
        ssim_per_layer[layers[index]] = score
        while score < sigma and index > 0:
            index -= 1
            score = self._attack_ssim(layers[index])
            ssim_per_layer[layers[index]] = score
        phase1_layer = layers[index]

        # Line 7: the candidate boundary is one layer after the first
        # success (or the first layer if the attack never succeeds).
        if score >= sigma and index < len(layers) - 1:
            index += 1

        # Phase 2 (lines 8-12): push the boundary later until the noised
        # accuracy is acceptable.
        baseline = noised_accuracy(
            self.model, layers[-1], 0.0, self.test_images, self.test_labels
        )
        threshold = baseline - self.config.accuracy_drop
        accuracy_per_layer: dict[float, float] = {}
        accuracy = self._accuracy(layers[index])
        accuracy_per_layer[layers[index]] = accuracy
        while accuracy < threshold and index < len(layers) - 1:
            index += 1
            accuracy = self._accuracy(layers[index])
            accuracy_per_layer[layers[index]] = accuracy

        return BoundarySearchResult(
            boundary=layers[index],
            phase1_layer=phase1_layer,
            baseline_accuracy=baseline,
            ssim_per_layer=ssim_per_layer,
            accuracy_per_layer=accuracy_per_layer,
        )
