"""Split-learning inference deployment (edge/cloud).

The mirror image of C2PI's client/server arrangement (see the comparison
in the paper's Section II):

* **split learning** — the *edge* owns the input *and* the prefix ``M1``;
  it computes ``M1(x)`` locally (optionally applying a defence) and ships
  the feature to the *cloud*, which owns ``M2`` and finishes the
  inference. The honest-but-curious cloud is the attacker.
* **C2PI** — the *server* owns the whole network; the prefix runs under
  2PC because the edge/client must not learn the weights.

Both settings expose the same object to the adversary — an intermediate
activation — so the attacks and defences of :mod:`repro.attacks` and
:mod:`repro.core.defenses` apply unchanged; only the trust and cost
structures differ. This deployment simulator tracks the bytes the edge
uploads and evaluates cloud-side IDPAs against the split.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import nn
from ..attacks.base import AttackResult
from ..attacks.evaluation import AttackFactory
from ..core.defenses import Defense
from ..models.layered import LayeredModel

__all__ = ["SplitInferenceResult", "SplitLearningDeployment"]


@dataclass
class SplitInferenceResult:
    """Outcome of one edge->cloud inference."""

    logits: np.ndarray
    cloud_view: np.ndarray  # the (defended) feature the cloud received
    uploaded_bytes: int
    edge_macs: int
    cloud_macs: int

    @property
    def prediction(self) -> np.ndarray:
        return self.logits.argmax(axis=1)


class SplitLearningDeployment:
    """An ``M1``/``M2`` split of a trained model at ``split_layer``.

    Parameters
    ----------
    model:
        The trained network (conceptually co-owned: the edge has M1's
        weights, the cloud M2's).
    split_layer:
        Layer id at which the activation crosses the network boundary.
    defense:
        Optional edge-side perturbation applied before upload.
    """

    def __init__(
        self,
        model: LayeredModel,
        split_layer: float,
        defense: Defense | None = None,
    ):
        self.model = model
        self.split_layer = split_layer
        self.defense = defense or Defense()
        # Validate the split once, eagerly.
        model.cut_position(split_layer)

    # ------------------------------------------------------------------
    def infer(self, images: np.ndarray) -> SplitInferenceResult:
        """Run one collaborative inference for an NCHW float batch."""
        with nn.no_grad():
            feature = self.model.forward_to(nn.Tensor(images), self.split_layer).data
            uploaded = self.defense.apply(feature)
            logits = self.model.forward_from(
                nn.Tensor(uploaded), self.split_layer
            ).data
        edge_macs, cloud_macs = self._mac_split(images.shape[0])
        return SplitInferenceResult(
            logits=logits,
            cloud_view=uploaded,
            uploaded_bytes=int(uploaded.astype(np.float32).nbytes),
            edge_macs=edge_macs,
            cloud_macs=cloud_macs,
        )

    def _mac_split(self, batch: int) -> tuple[int, int]:
        from ..mpc.program import split_macs

        return split_macs(self.model, self.split_layer, batch)

    # ------------------------------------------------------------------
    def evaluate_privacy(
        self,
        attack_factory: AttackFactory,
        attacker_images: np.ndarray,
        eval_images: np.ndarray,
    ) -> AttackResult:
        """The curious cloud's best reconstruction of the edge's inputs.

        The cloud trains the attack on its own data (same distribution),
        then inverts the defended features uploaded for ``eval_images``.
        """
        attack = attack_factory(self.model, self.split_layer)
        attack.prepare(attacker_images)
        return attack.evaluate_with_defense(eval_images, self.defense)
