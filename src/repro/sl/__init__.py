"""``repro.sl`` — split-learning collaborative inference (paper Section II).

The IDPA threat model originates in split learning: an *edge* device holds
the first layers ``M1``, a *cloud* holds the rest ``M2``, and the cloud
tries to invert the intermediate feature it receives. The paper notes
C2PI's DINA directly strengthens privacy evaluation in this setting too
("DINA also helps address the privacy issue in split learning"); this
subpackage provides the deployment simulator that closes that loop.
"""

from .deployment import SplitInferenceResult, SplitLearningDeployment

__all__ = ["SplitLearningDeployment", "SplitInferenceResult"]
